package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// ProbeDist names a vertex-pair sampling distribution for query workloads.
// Real adjacency traffic on power-law graphs is itself power-law — a few hub
// vertices appear in most queries — so the harness can skew its probe streams
// the same way instead of sampling endpoints uniformly.
type ProbeDist string

const (
	// DistUniform draws each endpoint uniformly from [0, n).
	DistUniform ProbeDist = "uniform"
	// DistZipf draws endpoints Zipf-distributed over the degree ranking: the
	// r-th highest-degree vertex (1-based) is drawn with probability
	// proportional to r^-s. Implemented by inverse-CDF search rather than
	// rand.Zipf, which requires s > 1; skew exponents below 1 (s = 0.8) are
	// part of the sweep.
	DistZipf ProbeDist = "zipf"
	// DistDegProp draws endpoints with probability proportional to degree+1
	// — the stationary distribution of a lazy random walk, smoothed so
	// isolated vertices stay reachable.
	DistDegProp ProbeDist = "degprop"
)

// ParseProbeDist validates a distribution name from a flag.
func ParseProbeDist(s string) (ProbeDist, error) {
	switch d := ProbeDist(s); d {
	case DistUniform, DistZipf, DistDegProp:
		return d, nil
	}
	return "", fmt.Errorf("unknown probe distribution %q (uniform | zipf | degprop)", s)
}

// ProbeSampler draws vertex pairs with independent, identically distributed
// endpoints from a chosen marginal over a graph's vertices. Sampling is
// deterministic in the seed: the same (graph, dist, s, seed) always yields
// the same probe stream, so experiment tables are bit-reproducible.
type ProbeSampler struct {
	rng   *rand.Rand
	n     int
	cum   []float64 // cumulative weights by sampling index; nil = uniform
	verts []int32   // vertex at sampling index; nil = identity
	wt    []float64 // per-vertex weight, id-indexed; nil = uniform
	total float64
}

// NewProbeSampler builds a sampler over g's vertices. zipfS is only read for
// DistZipf and must be positive there.
func NewProbeSampler(g *graph.Graph, dist ProbeDist, zipfS float64, seed int64) (*ProbeSampler, error) {
	var deg []int
	if dist != DistUniform {
		deg = g.Degrees()
	}
	return NewProbeSamplerDegrees(g.N(), deg, dist, zipfS, seed)
}

// NewProbeSamplerDegrees builds a sampler from a vertex count and a degree
// slice alone, for callers that have no graph in memory — a load generator
// pointed at a serving tier knows n from the info handshake and degrees (if it
// wants skew) from a degree file, never the edges. deg may be nil for
// DistUniform; the skewed distributions require len(deg) == n. zipfS is only
// read for DistZipf and must be positive there.
func NewProbeSamplerDegrees(n int, deg []int, dist ProbeDist, zipfS float64, seed int64) (*ProbeSampler, error) {
	if n == 0 {
		return nil, fmt.Errorf("probe sampler over an empty vertex set")
	}
	p := &ProbeSampler{rng: rand.New(rand.NewSource(seed)), n: n}
	if dist == DistUniform {
		return p, nil
	}
	if len(deg) != n {
		return nil, fmt.Errorf("probe distribution %q needs one degree per vertex: got %d degrees for n=%d", dist, len(deg), n)
	}
	switch dist {
	case DistZipf:
		if zipfS <= 0 {
			return nil, fmt.Errorf("zipf exponent must be > 0, got %g", zipfS)
		}
		// Rank vertices by descending degree (ties by id, so the ranking is
		// deterministic): Zipf mass follows popularity, and in a power-law
		// graph popularity is degree.
		verts := make([]int32, n)
		for v := range verts {
			verts[v] = int32(v)
		}
		sort.SliceStable(verts, func(i, j int) bool { return deg[verts[i]] > deg[verts[j]] })
		p.verts = verts
		p.cum = make([]float64, n)
		p.wt = make([]float64, n)
		for r, v := range verts {
			w := math.Pow(float64(r+1), -zipfS)
			p.total += w
			p.cum[r] = p.total
			p.wt[v] = w
		}
		return p, nil
	case DistDegProp:
		p.cum = make([]float64, n)
		p.wt = make([]float64, n)
		for v := 0; v < n; v++ {
			w := float64(deg[v] + 1)
			p.total += w
			p.cum[v] = p.total
			p.wt[v] = w
		}
		return p, nil
	}
	return nil, fmt.Errorf("unknown probe distribution %q", dist)
}

// Vertex draws one vertex from the marginal.
func (p *ProbeSampler) Vertex() int {
	if p.cum == nil {
		return p.rng.Intn(p.n)
	}
	i := sort.SearchFloat64s(p.cum, p.rng.Float64()*p.total)
	if i >= p.n {
		i = p.n - 1 // float round-up at the very top of the CDF
	}
	if p.verts != nil {
		return int(p.verts[i])
	}
	return i
}

// Pairs appends k pairs with independently sampled endpoints to dst.
func (p *ProbeSampler) Pairs(dst [][2]int, k int) [][2]int {
	for i := 0; i < k; i++ {
		dst = append(dst, [2]int{p.Vertex(), p.Vertex()})
	}
	return dst
}

// VertexProb returns the marginal probability of drawing vertex v — the
// weight experiments use to compute traffic-weighted label-size averages.
func (p *ProbeSampler) VertexProb(v int) float64 {
	if p.wt == nil {
		return 1 / float64(p.n)
	}
	return p.wt[v] / p.total
}
