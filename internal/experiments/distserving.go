package experiments

import (
	"fmt"
	"net"
	"runtime"
	"strconv"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/distance"
)

// E27DistanceServing measures the second query plane against the first: the
// zero-alloc slab-backed DistEngine vs the adjacency QueryEngine, in-process
// and over loopback TCP (opDist vs opQuery frames on the same server
// protocol), plus the slab encode pipeline vs the legacy per-label PLL
// encoder. Distance answers cost a hub-list merge instead of a bit probe, so
// the interesting numbers are the plane-vs-plane ratio at each transport —
// the protocol and batching machinery is shared, only the kernel differs.
func E27DistanceServing(cfg Config) ([]*Table, error) {
	alpha := 2.5
	n := 1 << 13
	targetQ := 1 << 17
	if cfg.Quick {
		n = 1 << 10
		targetQ = 1 << 12
	}
	g, err := gen.ChungLuPowerLaw(n, alpha, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Both planes over the same graph, degree layout (the serving default).
	adjLab, err := core.NewPowerLawScheme(alpha).Encode(g)
	if err != nil {
		return nil, err
	}
	adjEng, err := core.NewQueryEngine(adjLab)
	if err != nil {
		return nil, err
	}
	arena, err := distance.PLLScheme{}.EncodeArena(g, 0, core.LayoutDegree)
	if err != nil {
		return nil, err
	}
	distEng, err := core.NewDistEngine(arena)
	if err != nil {
		return nil, err
	}

	srv := adjserve.NewServer(adjEng, 0)
	srv.SetDistEngine(distEng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	tb := &Table{
		ID:    "E27",
		Title: fmt.Sprintf("distance vs adjacency query throughput (Chung–Lu n=%d, α=%.1f, degree layout)", n, alpha),
		Cols:  []string{"plane", "transport", "batch", "queries", "q/s", "p50.µs", "p99.µs"},
	}
	pairs := randomQueryPairs(g.N(), 1<<12, cfg.Seed+1)

	// In-process batch calls: the engines alone, no wire.
	adjQ, adjEl, adjLat, err := driveLocal(targetQ, 4096, pairs, func(chunk [][2]int) error {
		_, err := adjEng.AdjacentMany(chunk, nil)
		return err
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow("adjacency", "local", "4096", strconv.Itoa(adjQ),
		fmtQPS(adjQ, adjEl), fmtMicros(quantile(adjLat, 0.50)), fmtMicros(quantile(adjLat, 0.99)))
	dout := make([]int, 0, 4096)
	distQ, distEl, distLat, err := driveLocal(targetQ, 4096, pairs, func(chunk [][2]int) error {
		var err error
		dout, err = distEng.DistMany(chunk, dout[:0])
		return err
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow("distance", "local", "4096", strconv.Itoa(distQ),
		fmtQPS(distQ, distEl), fmtMicros(quantile(distLat, 0.50)), fmtMicros(quantile(distLat, 0.99)))

	// Loopback TCP, both planes through the same connection machinery.
	nc := runtime.GOMAXPROCS(0)
	for _, batch := range []int{1, 4096} {
		tq := targetQ
		if batch == 1 {
			tq = min(targetQ, 1<<14) // one RTT per query; cap the sample
		}
		for _, plane := range []string{"adjacency", "distance"} {
			q, el, lats, err := drivePlane(addr, plane, pairs, batch, nc, tq)
			if err != nil {
				return nil, err
			}
			tb.AddRow(plane, "tcp", strconv.Itoa(batch), strconv.Itoa(q),
				fmtQPS(q, el), fmtMicros(quantile(lats, 0.50)), fmtMicros(quantile(lats, 0.99)))
		}
	}
	tb.Notes = append(tb.Notes,
		"same server, same wire framing: opQuery answers are 1 bit each, opDist answers one uvarint byte each",
		"a distance query merges two sorted hub lists (min-sum) where an adjacency query probes one bit, so local distance q/s trails adjacency by the merge factor",
		"at batch=4096 over TCP the two planes converge toward their local rates: framing amortizes identically",
		"p50/p99 are per-frame round-trips: at batch b, divide by b for per-query time")

	encTb, err := distEncodeTable(g.N(), cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{tb, encTb}, nil
}

// driveLocal repeats batched in-process calls over pairs until target
// queries are answered, timing each call.
func driveLocal(targetQ, batch int, pairs [][2]int, call func(chunk [][2]int) error) (int, time.Duration, []time.Duration, error) {
	frames := targetQ / batch
	if frames < 8 {
		frames = 8
	}
	lats := make([]time.Duration, 0, frames)
	start := time.Now()
	for f := 0; f < frames; f++ {
		lo := (f * batch) % len(pairs)
		chunk := pairs[lo:min(lo+batch, len(pairs))]
		for len(chunk) < batch {
			chunk = append(chunk[:len(chunk):len(chunk)], pairs[:min(batch-len(chunk), len(pairs))]...)
		}
		fs := time.Now()
		if err := call(chunk); err != nil {
			return 0, 0, nil, err
		}
		lats = append(lats, time.Since(fs))
	}
	return frames * batch, time.Since(start), lats, nil
}

// drivePlane runs nc connections of pipelined frames against one query plane
// of a running server, mirroring driveServer's shape for comparability.
func drivePlane(addr, plane string, pairs [][2]int, batch, nc, targetQ int) (int, time.Duration, []time.Duration, error) {
	framesPerConn := targetQ / (batch * nc)
	if framesPerConn < 8 {
		framesPerConn = 8
	}
	clients := make([]*adjserve.Client, nc)
	for i := range clients {
		c, err := adjserve.Dial(addr)
		if err != nil {
			return 0, 0, nil, err
		}
		defer c.Close()
		c.MaxBatch = batch
		clients[i] = c
	}
	type res struct {
		lats []time.Duration
		err  error
	}
	results := make(chan res, nc)
	start := time.Now()
	for i, c := range clients {
		go func(i int, c *adjserve.Client) {
			lats := make([]time.Duration, 0, framesPerConn)
			bout := make([]bool, 0, batch)
			iout := make([]int, 0, batch)
			off := i * 31 // decorrelate the per-connection query streams
			for f := 0; f < framesPerConn; f++ {
				lo := (off + f*batch) % len(pairs)
				chunk := pairs[lo:min(lo+batch, len(pairs))]
				for len(chunk) < batch {
					chunk = append(chunk[:len(chunk):len(chunk)], pairs[:min(batch-len(chunk), len(pairs))]...)
				}
				fs := time.Now()
				var err error
				if plane == "distance" {
					iout, err = c.DistMany(chunk, iout[:0])
				} else {
					bout, err = c.AdjacentMany(chunk, bout[:0])
				}
				if err != nil {
					results <- res{err: err}
					return
				}
				lats = append(lats, time.Since(fs))
			}
			results <- res{lats: lats}
		}(i, c)
	}
	var all []time.Duration
	for range clients {
		r := <-results
		if r.err != nil {
			return 0, 0, nil, r.err
		}
		all = append(all, r.lats...)
	}
	return framesPerConn * batch * nc, time.Since(start), all, nil
}

// distEncodeTable times the slab encode pipeline (size-plan → prefix-sum →
// fill, 1 and GOMAXPROCS workers) against the legacy per-label PLL encoder
// on the same graph. Both produce byte-identical answers (the equivalence
// suite pins that); this table is purely throughput.
func distEncodeTable(n int, cfg Config) (*Table, error) {
	gg, err := gen.ChungLuPowerLaw(n, 2.5, 2, cfg.Seed)
	if err != nil {
		return nil, err
	}
	tb := &Table{
		ID:    "E27",
		Title: fmt.Sprintf("pll distance encode throughput at n=%d: slab pipeline vs legacy per-label", n),
		Cols:  []string{"encoder", "workers", "seconds", "vertices/s", "speedup"},
	}
	legacy, err := medianTime(3, func() error {
		_, err := distance.PLLScheme{}.Encode(gg)
		return err
	})
	if err != nil {
		return nil, err
	}
	tb.AddRow("legacy", "1", fmtF2(legacy.Seconds()),
		fmtQPS(gg.N(), legacy), "1.00")
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		slabT, err := medianTime(3, func() error {
			_, err := distance.PLLScheme{}.EncodeArena(gg, w, core.LayoutDegree)
			return err
		})
		if err != nil {
			return nil, err
		}
		tb.AddRow("slab", strconv.Itoa(w), fmtF2(slabT.Seconds()),
			fmtQPS(gg.N(), slabT), fmtF2(float64(legacy)/float64max(float64(slabT), 1)))
	}
	tb.Notes = append(tb.Notes,
		"legacy builds one bitstr label per vertex with per-vertex allocation; the slab pipeline writes one word-aligned arena",
		"the slab rows include the degree-layout permutation; answers are byte-identical to legacy (equivalence suite)")
	return tb, nil
}
