package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorSetGetClear(t *testing.T) {
	v := NewVector(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i)
	}
	for _, i := range idx {
		if !v.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != len(idx) {
		t.Errorf("Count = %d, want %d", v.Count(), len(idx))
	}
	v.Clear(64)
	if v.Get(64) {
		t.Error("bit 64 still set after Clear")
	}
	if v.Count() != len(idx)-1 {
		t.Errorf("Count after clear = %d", v.Count())
	}
}

func TestVectorZeroLength(t *testing.T) {
	v := NewVector(0)
	if v.Len() != 0 || v.Count() != 0 {
		t.Errorf("zero vector: len=%d count=%d", v.Len(), v.Count())
	}
	v2 := NewVector(-5)
	if v2.Len() != 0 {
		t.Errorf("negative length clamped to %d", v2.Len())
	}
}

func TestVectorRank(t *testing.T) {
	v := NewVector(300)
	set := map[int]bool{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 90; i++ {
		k := rng.Intn(300)
		set[k] = true
		v.Set(k)
	}
	check := func() {
		want := 0
		for i := 0; i <= 300; i++ {
			if got := v.Rank(i); got != want {
				t.Fatalf("Rank(%d) = %d, want %d", i, got, want)
			}
			if i < 300 && set[i] {
				want++
			}
		}
	}
	check() // linear fallback path
	v.BuildRank()
	check() // O(1) path
}

func TestVectorRankInvalidatedBySet(t *testing.T) {
	v := NewVector(64)
	v.Set(3)
	v.BuildRank()
	if v.Rank(64) != 1 {
		t.Fatalf("Rank = %d, want 1", v.Rank(64))
	}
	v.Set(10)
	if v.Rank(64) != 2 {
		t.Errorf("Rank after mutation = %d, want 2 (cache must invalidate)", v.Rank(64))
	}
}

func TestVectorAppendRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 63, 64, 65, 128, 200} {
		v := NewVector(n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 1 {
				v.Set(i)
			}
		}
		var b Builder
		b.AppendBit(true) // misalign on purpose
		off := b.Len()
		v.Append(&b)
		got, err := VectorFromString(b.String(), off, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != v.Get(i) {
				t.Fatalf("n=%d bit %d mismatch", n, i)
			}
		}
	}
}

func TestVectorFromStringBounds(t *testing.T) {
	var b Builder
	b.AppendUint(0, 10)
	if _, err := VectorFromString(b.String(), 5, 10); err == nil {
		t.Error("expected out-of-bounds error")
	}
	if _, err := VectorFromString(b.String(), -1, 5); err == nil {
		t.Error("expected error for negative offset")
	}
}

// Property: rank is consistent with a naive recount at every boundary.
func TestQuickVectorRank(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%512) + 1
		v := NewVector(n)
		rng := rand.New(rand.NewSource(seed))
		bitsSet := make([]bool, n)
		for i := 0; i < n/3; i++ {
			k := rng.Intn(n)
			bitsSet[k] = true
			v.Set(k)
		}
		v.BuildRank()
		want := 0
		for i := 0; i <= n; i++ {
			if v.Rank(i) != want {
				return false
			}
			if i < n && bitsSet[i] {
				want++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
