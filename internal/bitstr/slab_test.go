package bitstr

import (
	"math/rand"
	"testing"
)

// TestSlabWriterMatchesBuilder writes randomized field sequences through
// both a Builder and a SlabWriter and requires bit-identical results.
func TestSlabWriterMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		type field struct {
			v uint64
			w int
		}
		nf := rng.Intn(40)
		fields := make([]field, nf)
		bits := 0
		for i := range fields {
			w := 1 + rng.Intn(64)
			fields[i] = field{v: rng.Uint64(), w: w}
			bits += w
		}
		var b Builder
		for _, f := range fields {
			b.AppendUint(f.v, f.w)
		}
		want := b.String()

		slab := make([]byte, SlabBytes(SlabWords(bits)))
		sw := NewSlabWriter(slab)
		sw.SeekBit(0)
		for _, f := range fields {
			sw.WriteUint(f.v, f.w)
		}
		sw.Flush()
		got, err := SlabView(slab, 0, bits)
		if err != nil {
			t.Fatalf("trial %d: SlabView: %v", trial, err)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: slab %v != builder %v", trial, got, want)
		}
	}
}

// TestSlabWriterMultiLabel packs several labels at word-aligned offsets and
// checks each view independently, including Pos accounting.
func TestSlabWriterMultiLabel(t *testing.T) {
	lens := []int{1, 63, 64, 65, 130, 7}
	totalWords := 0
	offs := make([]int64, len(lens))
	for i, l := range lens {
		offs[i] = int64(totalWords) * SlabWordBits
		totalWords += SlabWords(l)
	}
	slab := make([]byte, SlabBytes(totalWords))
	sw := NewSlabWriter(slab)
	for i, l := range lens {
		sw.SeekBit(offs[i])
		for j := 0; j < l; j++ {
			sw.WriteBit((i+j)%3 == 0)
		}
		if got := sw.Pos(); got != offs[i]+int64(l) {
			t.Fatalf("label %d: Pos = %d, want %d", i, got, offs[i]+int64(l))
		}
		sw.Flush()
	}
	for i, l := range lens {
		view, err := SlabView(slab, offs[i], l)
		if err != nil {
			t.Fatalf("label %d: %v", i, err)
		}
		for j := 0; j < l; j++ {
			bit, err := view.Bit(j)
			if err != nil {
				t.Fatalf("label %d bit %d: %v", i, j, err)
			}
			if want := (i+j)%3 == 0; bit != want {
				t.Fatalf("label %d bit %d = %v, want %v", i, j, bit, want)
			}
		}
	}
}

// TestSlabSetBitAndReadBits checks the random-access primitives against the
// sequential writer.
func TestSlabSetBitAndReadBits(t *testing.T) {
	const bits = 500
	slab := make([]byte, SlabBytes(SlabWords(bits)))
	set := map[int64]bool{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 120; i++ {
		p := int64(rng.Intn(bits))
		SlabSetBit(slab, p)
		set[p] = true
	}
	view, err := SlabView(slab, 0, bits)
	if err != nil {
		t.Fatal(err)
	}
	for p := int64(0); p < bits; p++ {
		bit, _ := view.Bit(int(p))
		if bit != set[p] {
			t.Fatalf("bit %d = %v, want %v", p, bit, set[p])
		}
	}
	// Random word-width reads must agree with PeekUint on the view.
	for i := 0; i < 500; i++ {
		w := 1 + rng.Intn(64)
		off := rng.Intn(bits - w + 1)
		want, err := view.PeekUint(off, w)
		if err != nil {
			t.Fatal(err)
		}
		if got := SlabReadBits(slab, int64(off), w); got != want {
			t.Fatalf("SlabReadBits(%d,%d) = %#x, want %#x", off, w, got, want)
		}
	}
}

func TestSlabViewErrors(t *testing.T) {
	slab := make([]byte, 16)
	if _, err := SlabView(slab, 3, 8); err == nil {
		t.Fatal("unaligned view accepted")
	}
	if _, err := SlabView(slab, 64, 100); err == nil {
		t.Fatal("overlong view accepted")
	}
	if _, err := SlabView(slab, 0, -1); err == nil {
		t.Fatal("negative length accepted")
	}
}

func TestVectorGrow(t *testing.T) {
	v := NewVector(10)
	v.Set(3)
	v.Set(9)
	v.Grow(200)
	if v.Len() != 200 {
		t.Fatalf("Len = %d, want 200", v.Len())
	}
	if !v.Get(3) || !v.Get(9) {
		t.Fatal("Grow lost existing bits")
	}
	for i := 10; i < 200; i++ {
		if v.Get(i) {
			t.Fatalf("bit %d nonzero after Grow", i)
		}
	}
	v.Set(199)
	if v.Count() != 3 {
		t.Fatalf("Count = %d, want 3", v.Count())
	}
	v.Grow(50) // shrinking request is a no-op
	if v.Len() != 200 {
		t.Fatalf("Len after no-op Grow = %d, want 200", v.Len())
	}
}

// BenchmarkSlabWriterFill measures the word-granularity fill path; the
// whole loop runs with zero per-label allocations.
func BenchmarkSlabWriterFill(b *testing.B) {
	const labelBits = 20 * 17 // 20 ids of 17 bits
	const labels = 1024
	words := labels * SlabWords(labelBits)
	slab := make([]byte, SlabBytes(words))
	sw := NewSlabWriter(slab)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < labels; l++ {
			sw.SeekBit(int64(l*SlabWords(labelBits)) * SlabWordBits)
			for f := 0; f < 20; f++ {
				sw.WriteUint(uint64(l+f), 17)
			}
			sw.Flush()
		}
	}
}

// BenchmarkBuilderGrownFill is the Builder counterpart with preallocation
// (Grow): the remaining non-slab encoders follow this pattern.
func BenchmarkBuilderGrownFill(b *testing.B) {
	const labels = 1024
	var bd Builder
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for l := 0; l < labels; l++ {
			bd.Reset()
			bd.Grow(20 * 17)
			for f := 0; f < 20; f++ {
				bd.AppendUint(uint64(l+f), 17)
			}
			_ = bd.Len()
		}
	}
}

// BenchmarkVectorGrowReuse exercises the pooled-scratch pattern Grow
// enables: one vector reused across increasing sizes without reallocation
// after the first.
func BenchmarkVectorGrowReuse(b *testing.B) {
	v := NewVector(0)
	v.Grow(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Reset()
		v.Grow(64 + i%4096)
		v.Set(i % v.Len())
	}
}
