package bitstr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEmptyString(t *testing.T) {
	var s String
	if s.Len() != 0 {
		t.Fatalf("empty string has length %d", s.Len())
	}
	if _, err := s.Bit(0); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("Bit(0) on empty: err = %v, want ErrOutOfBounds", err)
	}
}

func TestAppendBitRoundTrip(t *testing.T) {
	pattern := []bool{true, false, true, true, false, false, false, true, true, false, true}
	var b Builder
	for _, bit := range pattern {
		b.AppendBit(bit)
	}
	s := b.String()
	if s.Len() != len(pattern) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(pattern))
	}
	for i, want := range pattern {
		got, err := s.Bit(i)
		if err != nil {
			t.Fatalf("Bit(%d): %v", i, err)
		}
		if got != want {
			t.Errorf("Bit(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAppendUintWidths(t *testing.T) {
	tests := []struct {
		v     uint64
		width int
	}{
		{0, 1}, {1, 1}, {5, 3}, {255, 8}, {256, 9}, {1 << 20, 21},
		{0xDEADBEEF, 32}, {^uint64(0), 64}, {1, 64}, {0, 64},
		{42, 7}, {1023, 10}, {1024, 11},
	}
	var b Builder
	for _, tc := range tests {
		b.AppendUint(tc.v, tc.width)
	}
	r := NewReader(b.String())
	for _, tc := range tests {
		got, err := r.ReadUint(tc.width)
		if err != nil {
			t.Fatalf("ReadUint(%d): %v", tc.width, err)
		}
		if got != tc.v {
			t.Errorf("ReadUint(%d) = %d, want %d", tc.width, got, tc.v)
		}
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestAppendUintMasksHighBits(t *testing.T) {
	var b Builder
	b.AppendUint(0xFF, 4) // only low 4 bits should be kept
	r := NewReader(b.String())
	got, err := r.ReadUint(4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0xF {
		t.Errorf("got %d, want 15", got)
	}
}

func TestAppendUintZeroWidth(t *testing.T) {
	var b Builder
	b.AppendUint(123, 0)
	if b.Len() != 0 {
		t.Errorf("zero-width append wrote %d bits", b.Len())
	}
}

func TestUnaryRoundTrip(t *testing.T) {
	var b Builder
	values := []uint64{0, 1, 2, 7, 13, 64}
	for _, v := range values {
		b.AppendUnary(v)
	}
	r := NewReader(b.String())
	for _, want := range values {
		got, err := r.ReadUnary()
		if err != nil {
			t.Fatalf("ReadUnary: %v", err)
		}
		if got != want {
			t.Errorf("ReadUnary = %d, want %d", got, want)
		}
	}
}

func TestGammaRoundTrip(t *testing.T) {
	var b Builder
	values := []uint64{1, 2, 3, 4, 5, 15, 16, 17, 1000, 1 << 32, ^uint64(0)}
	for _, v := range values {
		if err := b.AppendGamma(v); err != nil {
			t.Fatalf("AppendGamma(%d): %v", v, err)
		}
	}
	r := NewReader(b.String())
	for _, want := range values {
		got, err := r.ReadGamma()
		if err != nil {
			t.Fatalf("ReadGamma: %v", err)
		}
		if got != want {
			t.Errorf("ReadGamma = %d, want %d", got, want)
		}
	}
}

func TestGammaZeroRejected(t *testing.T) {
	var b Builder
	if err := b.AppendGamma(0); !errors.Is(err, ErrMalformed) {
		t.Errorf("AppendGamma(0) err = %v, want ErrMalformed", err)
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	var b Builder
	values := []uint64{1, 2, 3, 8, 100, 12345, 1 << 40, ^uint64(0)}
	for _, v := range values {
		if err := b.AppendDelta(v); err != nil {
			t.Fatalf("AppendDelta(%d): %v", v, err)
		}
	}
	r := NewReader(b.String())
	for _, want := range values {
		got, err := r.ReadDelta()
		if err != nil {
			t.Fatalf("ReadDelta: %v", err)
		}
		if got != want {
			t.Errorf("ReadDelta = %d, want %d", got, want)
		}
	}
}

func TestGamma0Delta0(t *testing.T) {
	var b Builder
	for v := uint64(0); v < 50; v++ {
		b.AppendGamma0(v)
		b.AppendDelta0(v)
	}
	r := NewReader(b.String())
	for v := uint64(0); v < 50; v++ {
		g, err := r.ReadGamma0()
		if err != nil || g != v {
			t.Fatalf("ReadGamma0 = %d,%v want %d", g, err, v)
		}
		d, err := r.ReadDelta0()
		if err != nil || d != v {
			t.Fatalf("ReadDelta0 = %d,%v want %d", d, err, v)
		}
	}
}

func TestCodeLengths(t *testing.T) {
	for _, v := range []uint64{1, 2, 3, 7, 8, 255, 256, 1 << 30} {
		var b Builder
		if err := b.AppendGamma(v); err != nil {
			t.Fatal(err)
		}
		if b.Len() != GammaLen(v) {
			t.Errorf("gamma(%d): wrote %d bits, GammaLen = %d", v, b.Len(), GammaLen(v))
		}
		var b2 Builder
		if err := b2.AppendDelta(v); err != nil {
			t.Fatal(err)
		}
		if b2.Len() != DeltaLen(v) {
			t.Errorf("delta(%d): wrote %d bits, DeltaLen = %d", v, b2.Len(), DeltaLen(v))
		}
	}
}

func TestAppendStringAligned(t *testing.T) {
	var a, b Builder
	a.AppendUint(0xAB, 8)
	b.AppendUint(0xCD, 8)
	var c Builder
	c.AppendString(a.String())
	c.AppendString(b.String())
	r := NewReader(c.String())
	v, err := r.ReadUint(16)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xABCD {
		t.Errorf("got %#x, want 0xabcd", v)
	}
}

func TestAppendStringUnaligned(t *testing.T) {
	var inner Builder
	inner.AppendUint(0b1011001, 7)
	var outer Builder
	outer.AppendBit(true)
	outer.AppendBit(false)
	outer.AppendBit(true)
	outer.AppendString(inner.String())
	r := NewReader(outer.String())
	head, err := r.ReadUint(3)
	if err != nil {
		t.Fatal(err)
	}
	if head != 0b101 {
		t.Errorf("head = %b, want 101", head)
	}
	body, err := r.ReadUint(7)
	if err != nil {
		t.Fatal(err)
	}
	if body != 0b1011001 {
		t.Errorf("body = %b, want 1011001", body)
	}
}

func TestReaderSeek(t *testing.T) {
	var b Builder
	b.AppendUint(0xFFFF, 16)
	r := NewReader(b.String())
	if err := r.Seek(8); err != nil {
		t.Fatal(err)
	}
	if r.Pos() != 8 || r.Remaining() != 8 {
		t.Errorf("pos=%d remaining=%d", r.Pos(), r.Remaining())
	}
	if err := r.Seek(17); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("Seek(17) err = %v, want ErrOutOfBounds", err)
	}
	if err := r.Seek(-1); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("Seek(-1) err = %v, want ErrOutOfBounds", err)
	}
}

func TestReadPastEnd(t *testing.T) {
	var b Builder
	b.AppendUint(3, 2)
	r := NewReader(b.String())
	if _, err := r.ReadUint(3); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("ReadUint past end err = %v, want ErrOutOfBounds", err)
	}
}

func TestWidthFor(t *testing.T) {
	tests := []struct {
		n    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20}, {1<<20 + 1, 21}}
	for _, tc := range tests {
		if got := WidthFor(tc.n); got != tc.want {
			t.Errorf("WidthFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestEqual(t *testing.T) {
	var a, b Builder
	a.AppendUint(5, 3)
	b.AppendUint(5, 3)
	if !a.String().Equal(b.String()) {
		t.Error("identical strings not Equal")
	}
	b.AppendBit(true)
	if a.String().Equal(b.String()) {
		t.Error("different-length strings Equal")
	}
}

func TestBuilderReset(t *testing.T) {
	var b Builder
	b.AppendUint(42, 16)
	b.Reset()
	if b.Len() != 0 {
		t.Fatalf("Len after Reset = %d", b.Len())
	}
	b.AppendUint(7, 3)
	r := NewReader(b.String())
	v, err := r.ReadUint(3)
	if err != nil || v != 7 {
		t.Fatalf("after reset read %d, %v", v, err)
	}
}

// Property: any sequence of (value,width) appends reads back exactly.
func TestQuickUintRoundTrip(t *testing.T) {
	f := func(vals []uint64, widthSeed uint8) bool {
		rng := rand.New(rand.NewSource(int64(widthSeed)))
		widths := make([]int, len(vals))
		var b Builder
		for i, v := range vals {
			w := rng.Intn(64) + 1
			widths[i] = w
			b.AppendUint(v, w)
		}
		r := NewReader(b.String())
		for i, v := range vals {
			w := widths[i]
			want := v
			if w < 64 {
				want &= (1 << uint(w)) - 1
			}
			got, err := r.ReadUint(w)
			if err != nil || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: gamma and delta codes round-trip for arbitrary nonzero values.
func TestQuickGammaDeltaRoundTrip(t *testing.T) {
	f := func(vals []uint64) bool {
		var b Builder
		for _, v := range vals {
			b.AppendGamma0(v)
			b.AppendDelta0(v)
		}
		r := NewReader(b.String())
		for _, v := range vals {
			g, err := r.ReadGamma0()
			if err != nil || g != v {
				return false
			}
			d, err := r.ReadDelta0()
			if err != nil || d != v {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: AppendString concatenation preserves content at any alignment.
func TestQuickAppendString(t *testing.T) {
	f := func(prefixLen uint8, payload []byte) bool {
		var inner Builder
		for _, by := range payload {
			inner.AppendUint(uint64(by), 8)
		}
		in := inner.String()
		var outer Builder
		p := int(prefixLen % 9)
		for i := 0; i < p; i++ {
			outer.AppendBit(i%2 == 0)
		}
		outer.AppendString(in)
		r := NewReader(outer.String())
		if err := r.Seek(p); err != nil {
			return false
		}
		for _, by := range payload {
			v, err := r.ReadUint(8)
			if err != nil || v != uint64(by) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringRender(t *testing.T) {
	s := FromBits([]bool{true, false, true})
	if s.String() != "101" {
		t.Errorf("String() = %q, want 101", s.String())
	}
	var b Builder
	for i := 0; i < 200; i++ {
		b.AppendBit(true)
	}
	if got := b.String().String(); len(got) < 128 {
		t.Errorf("long render too short: %q", got)
	}
}

// TestPeek64AllPaths cross-checks ReadUint against bit-by-bit assembly at
// every offset/width combination around the fast-path, spill, and tail
// boundaries of the word-wise reader.
func TestPeek64AllPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var b Builder
	const totalBits = 200 // 25 bytes: offsets near the end exercise the tail path
	for i := 0; i < totalBits; i++ {
		b.AppendBit(rng.Intn(2) == 1)
	}
	s := b.String()
	for off := 0; off < totalBits; off++ {
		for _, w := range []int{1, 7, 8, 9, 31, 32, 33, 56, 57, 58, 63, 64} {
			if off+w > totalBits {
				continue
			}
			r := NewReader(s)
			if err := r.Seek(off); err != nil {
				t.Fatal(err)
			}
			got, err := r.ReadUint(w)
			if err != nil {
				t.Fatalf("off=%d w=%d: %v", off, w, err)
			}
			var want uint64
			for k := 0; k < w; k++ {
				bit, err := s.Bit(off + k)
				if err != nil {
					t.Fatal(err)
				}
				want <<= 1
				if bit {
					want |= 1
				}
			}
			if got != want {
				t.Fatalf("off=%d w=%d: got %#x want %#x", off, w, got, want)
			}
		}
	}
}

func BenchmarkReadUint17(b *testing.B) {
	var bl Builder
	for i := 0; i < 10000; i++ {
		bl.AppendUint(uint64(i), 17)
	}
	s := bl.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(s)
		for r.Remaining() >= 17 {
			if _, err := r.ReadUint(17); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestPeekUintMatchesReader(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var b Builder
	for i := 0; i < 500; i++ {
		b.AppendUint(rng.Uint64(), 1+rng.Intn(64))
	}
	s := b.String()
	r := NewReader(s)
	for trial := 0; trial < 5000; trial++ {
		w := rng.Intn(65)
		if w > s.Len() {
			w = s.Len()
		}
		i := rng.Intn(s.Len() - w + 1)
		if err := r.Seek(i); err != nil {
			t.Fatal(err)
		}
		want, err := r.ReadUint(w)
		if err != nil {
			t.Fatal(err)
		}
		got, err := s.PeekUint(i, w)
		if err != nil {
			t.Fatalf("PeekUint(%d,%d): %v", i, w, err)
		}
		if got != want {
			t.Fatalf("PeekUint(%d,%d) = %#x, Reader = %#x", i, w, got, want)
		}
		if m := s.MustPeekUint(i, w); m != want {
			t.Fatalf("MustPeekUint(%d,%d) = %#x, Reader = %#x", i, w, m, want)
		}
	}
}

func TestPeekUintBounds(t *testing.T) {
	var b Builder
	b.AppendUint(0xAB, 8)
	s := b.String()
	for _, c := range []struct{ i, w int }{{-1, 4}, {5, 4}, {0, 9}, {0, 65}, {8, 1}} {
		if _, err := s.PeekUint(c.i, c.w); err == nil {
			t.Errorf("PeekUint(%d,%d) succeeded, want error", c.i, c.w)
		}
	}
	if v, err := s.PeekUint(8, 0); err != nil || v != 0 {
		t.Errorf("PeekUint(8,0) = %d,%v, want 0,nil", v, err)
	}
}

func TestWrapViewsAndMasksPadding(t *testing.T) {
	// 13 bits over 2 bytes; the low 3 bits of the second byte are padding
	// and must be zeroed in place by Wrap.
	data := []byte{0b10110100, 0b11111111}
	s, err := Wrap(data, 13)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 13 {
		t.Fatalf("Len = %d, want 13", s.Len())
	}
	if data[1] != 0b11111000 {
		t.Fatalf("padding not masked: %#08b", data[1])
	}
	var b Builder
	b.AppendUint(0b1011010011111, 13)
	if !s.Equal(b.String()) {
		t.Fatalf("wrapped = %v, want %v", s, b.String())
	}
	// Views share the underlying bytes: no copy.
	if &data[0] != &s.Bytes()[0] {
		t.Fatal("Wrap copied the data")
	}
	// Length mismatches are rejected.
	if _, err := Wrap(data, 17); err == nil {
		t.Error("Wrap accepted 2 bytes for 17 bits")
	}
	if _, err := Wrap(data, -1); err == nil {
		t.Error("Wrap accepted negative length")
	}
	if empty, err := Wrap(nil, 0); err != nil || empty.Len() != 0 {
		t.Errorf("Wrap(nil,0) = %v,%v", empty, err)
	}
}

func TestVectorReset(t *testing.T) {
	v := NewVector(130)
	for _, i := range []int{0, 63, 64, 129} {
		v.Set(i)
	}
	v.BuildRank()
	if v.Count() != 4 {
		t.Fatalf("Count = %d, want 4", v.Count())
	}
	v.Reset()
	if v.Count() != 0 || v.Len() != 130 {
		t.Fatalf("after Reset: count=%d len=%d", v.Count(), v.Len())
	}
	if v.Rank(130) != 0 {
		t.Fatalf("Rank after Reset = %d, want 0", v.Rank(130))
	}
	v.Set(7)
	if !v.Get(7) || v.Count() != 1 {
		t.Fatal("vector unusable after Reset")
	}
}
