// Package bitstr provides the bit-level encoding substrate used by every
// labeling scheme in this repository.
//
// A label in an adjacency labeling scheme is a bit string, and the size of a
// scheme is measured in bits, not bytes. This package therefore provides
// exact-bit primitives: an append-only Builder, a cursor-based Reader,
// fixed-width integers, unary codes, Elias gamma/delta codes, and bit
// vectors with O(1) rank support. All types are stdlib-only and safe for
// concurrent reads after construction.
package bitstr

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strings"
)

// ErrOutOfBounds is returned when a read would pass the end of the string.
var ErrOutOfBounds = errors.New("bitstr: read out of bounds")

// ErrMalformed is returned when a self-delimiting code cannot be decoded.
var ErrMalformed = errors.New("bitstr: malformed code")

// String is an immutable sequence of bits. The zero value is the empty
// string. Bits are stored MSB-first within each byte so that lexicographic
// comparison of the underlying bytes matches bit-wise lexicographic order.
type String struct {
	data []byte
	n    int // number of valid bits
}

// Len returns the number of bits in s.
func (s String) Len() int { return s.n }

// Bytes returns the underlying storage. The final byte may contain up to 7
// padding zero bits. The caller must not modify the returned slice.
func (s String) Bytes() []byte { return s.data }

// SizeBytes returns the number of bytes needed to store the string.
func (s String) SizeBytes() int { return len(s.data) }

// Bit returns the i-th bit (0-indexed from the start of the string).
func (s String) Bit(i int) (bool, error) {
	if i < 0 || i >= s.n {
		return false, fmt.Errorf("%w: bit %d of %d", ErrOutOfBounds, i, s.n)
	}
	return s.data[i>>3]&(1<<(7-uint(i&7))) != 0, nil
}

// PeekUint reads w bits starting at bit offset i (MSB first) without a
// Reader — the allocation-free fast path used by query engines that probe
// word-sized fields at computed offsets. w must be in [0, 64] and the range
// [i, i+w) must lie inside the string.
func (s String) PeekUint(i, w int) (uint64, error) {
	if w < 0 || w > 64 {
		return 0, fmt.Errorf("%w: width %d", ErrMalformed, w)
	}
	if i < 0 || i+w > s.n {
		return 0, fmt.Errorf("%w: bits [%d,%d) of %d", ErrOutOfBounds, i, i+w, s.n)
	}
	return s.peek64(i, w), nil
}

// MustPeekUint is PeekUint for callers that have already bounds-checked
// [i, i+w) against Len(); out-of-range offsets cause a panic or garbage
// bits rather than an error.
func (s String) MustPeekUint(i, w int) uint64 {
	return s.peek64(i, w)
}

// Wrap builds a String that views data directly — no copy — so many labels
// can share one contiguous arena slab. len(data) must be exactly
// ceil(nBits/8). Wrap zeroes the padding bits of the final byte in place
// (so Equal and lexicographic byte comparison behave as for built strings);
// the caller must not modify data afterwards.
func Wrap(data []byte, nBits int) (String, error) {
	if nBits < 0 || len(data) != (nBits+7)>>3 {
		return String{}, fmt.Errorf("%w: %d bytes for %d bits", ErrMalformed, len(data), nBits)
	}
	if pad := nBits & 7; pad != 0 {
		data[len(data)-1] &= byte(0xFF) << (8 - pad)
	}
	return String{data: data, n: nBits}, nil
}

// Equal reports whether two bit strings have identical length and content.
func (s String) Equal(t String) bool {
	if s.n != t.n {
		return false
	}
	for i := range s.data {
		if s.data[i] != t.data[i] {
			return false
		}
	}
	return true
}

// String renders the bits as a "0101..." text form, truncated for very long
// strings so that debug output stays readable.
func (s String) String() string {
	const maxRender = 128
	var b strings.Builder
	n := s.n
	trunc := false
	if n > maxRender {
		n = maxRender
		trunc = true
	}
	b.Grow(n + 16)
	for i := 0; i < n; i++ {
		bit, _ := s.Bit(i)
		if bit {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&b, "...(%d bits)", s.n)
	}
	return b.String()
}

// FromBits constructs a String from a slice of booleans. Useful in tests.
func FromBits(bitsIn []bool) String {
	var b Builder
	for _, bit := range bitsIn {
		b.AppendBit(bit)
	}
	return b.String()
}

// Builder incrementally assembles a bit string. The zero value is ready to
// use. Builder is not safe for concurrent use.
type Builder struct {
	data []byte
	n    int
}

// Len returns the number of bits appended so far.
func (b *Builder) Len() int { return b.n }

// Reset discards all appended bits, retaining allocated capacity.
func (b *Builder) Reset() {
	b.data = b.data[:0]
	b.n = 0
}

// Grow pre-allocates capacity for at least nBits additional bits.
func (b *Builder) Grow(nBits int) {
	need := (b.n+nBits+7)>>3 - len(b.data)
	if need <= 0 {
		return
	}
	if cap(b.data)-len(b.data) >= need {
		return
	}
	nd := make([]byte, len(b.data), len(b.data)+need)
	copy(nd, b.data)
	b.data = nd
}

// AppendBit appends a single bit.
func (b *Builder) AppendBit(bit bool) {
	if b.n&7 == 0 {
		b.data = append(b.data, 0)
	}
	if bit {
		b.data[b.n>>3] |= 1 << (7 - uint(b.n&7))
	}
	b.n++
}

// AppendUint appends the low `width` bits of v, most significant bit first.
// width must be in [0, 64]; bits of v above width must be zero for the
// round-trip to be exact (they are masked off).
func (b *Builder) AppendUint(v uint64, width int) {
	if width <= 0 {
		return
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	for width > 0 {
		free := 8 - (b.n & 7)
		if free == 8 {
			b.data = append(b.data, 0)
		}
		take := free
		if take > width {
			take = width
		}
		chunk := byte(v >> uint(width-take))
		b.data[b.n>>3] |= chunk << uint(free-take)
		b.n += take
		width -= take
	}
}

// AppendString appends all bits of another bit string.
func (b *Builder) AppendString(s String) {
	// Fast path: byte-aligned destination.
	if b.n&7 == 0 {
		b.data = append(b.data, s.data...)
		b.n += s.n
		// Trim excess padding bytes if s had them.
		b.data = b.data[:(b.n+7)>>3]
		return
	}
	for i := 0; i < s.n; i += 64 {
		w := s.n - i
		if w > 64 {
			w = 64
		}
		v := s.peek64(i, w)
		b.AppendUint(v, w)
	}
}

// peek64 reads w (<=64) bits starting at bit offset i; the caller
// guarantees i+w <= s.n. The fast path loads 8 bytes at once (plus at most
// one spill byte); the tail path near the end of the buffer accumulates the
// remaining bytes, which is always at most 64 bits.
func (s String) peek64(i, w int) uint64 {
	if w == 0 {
		return 0
	}
	firstByte := i >> 3
	skip := uint(i & 7)
	if firstByte+8 <= len(s.data) {
		be := binary.BigEndian.Uint64(s.data[firstByte:])
		hi := be << skip // wanted bits now at the top, low `skip` bits zeroed
		if 64-skip >= uint(w) {
			return hi >> (64 - uint(w))
		}
		// w > 64-skip: up to 7 bits spill into the next byte.
		r := uint(w) - (64 - skip)
		return hi>>(64-uint(w)) | uint64(s.data[firstByte+8])>>(8-r)
	}
	// Tail: at most 8 bytes remain, so the accumulator cannot overflow.
	var v uint64
	bits := uint(0)
	for b := firstByte; b < len(s.data) && bits < skip+uint(w); b++ {
		v = v<<8 | uint64(s.data[b])
		bits += 8
	}
	v >>= bits - skip - uint(w)
	if w < 64 {
		v &= (1 << uint(w)) - 1
	}
	return v
}

// AppendUnary appends v as a unary code: v one-bits followed by a zero.
func (b *Builder) AppendUnary(v uint64) {
	for i := uint64(0); i < v; i++ {
		b.AppendBit(true)
	}
	b.AppendBit(false)
}

// AppendGamma appends v >= 1 using the Elias gamma code:
// floor(log2 v) zeros, then the binary representation of v.
// Gamma codes use 2*floor(log2 v)+1 bits.
func (b *Builder) AppendGamma(v uint64) error {
	if v == 0 {
		return fmt.Errorf("%w: gamma code requires v >= 1", ErrMalformed)
	}
	nb := bits.Len64(v) // number of binary digits
	for i := 0; i < nb-1; i++ {
		b.AppendBit(false)
	}
	b.AppendUint(v, nb)
	return nil
}

// AppendGamma0 appends any v >= 0 by gamma-coding v+1.
func (b *Builder) AppendGamma0(v uint64) {
	_ = b.AppendGamma(v + 1) // v+1 >= 1 always
}

// AppendDelta appends v >= 1 using the Elias delta code: gamma code of the
// bit length of v, followed by the binary digits of v below the leading one.
func (b *Builder) AppendDelta(v uint64) error {
	if v == 0 {
		return fmt.Errorf("%w: delta code requires v >= 1", ErrMalformed)
	}
	nb := bits.Len64(v)
	if err := b.AppendGamma(uint64(nb)); err != nil {
		return err
	}
	if nb > 1 {
		b.AppendUint(v, nb-1) // drop the leading 1 bit
	}
	return nil
}

// AppendDelta0 appends any v >= 0 by delta-coding v+1.
func (b *Builder) AppendDelta0(v uint64) {
	_ = b.AppendDelta(v + 1)
}

// String freezes the builder contents into an immutable String. The builder
// remains usable; subsequent appends do not affect the returned value.
func (b *Builder) String() String {
	out := make([]byte, len(b.data))
	copy(out, b.data)
	return String{data: out, n: b.n}
}

// Reader is a cursor over a bit string. The zero value reads from the empty
// string. Reader is not safe for concurrent use.
type Reader struct {
	s   String
	pos int
}

// NewReader returns a Reader positioned at the start of s.
func NewReader(s String) *Reader { return &Reader{s: s} }

// Pos returns the current bit offset.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return r.s.n - r.pos }

// Seek repositions the cursor to bit offset pos.
func (r *Reader) Seek(pos int) error {
	if pos < 0 || pos > r.s.n {
		return fmt.Errorf("%w: seek %d of %d", ErrOutOfBounds, pos, r.s.n)
	}
	r.pos = pos
	return nil
}

// ReadBit consumes and returns one bit.
func (r *Reader) ReadBit() (bool, error) {
	b, err := r.s.Bit(r.pos)
	if err != nil {
		return false, err
	}
	r.pos++
	return b, nil
}

// ReadUint consumes width bits (MSB first) and returns them as a uint64.
func (r *Reader) ReadUint(width int) (uint64, error) {
	if width < 0 || width > 64 {
		return 0, fmt.Errorf("%w: width %d", ErrMalformed, width)
	}
	if r.pos+width > r.s.n {
		return 0, fmt.Errorf("%w: need %d bits, have %d", ErrOutOfBounds, width, r.s.n-r.pos)
	}
	v := r.s.peek64(r.pos, width)
	r.pos += width
	return v, nil
}

// ReadUnary consumes a unary code and returns its value.
func (r *Reader) ReadUnary() (uint64, error) {
	var v uint64
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if !bit {
			return v, nil
		}
		v++
	}
}

// ReadGamma consumes an Elias gamma code.
func (r *Reader) ReadGamma() (uint64, error) {
	zeros := 0
	for {
		bit, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if bit {
			break
		}
		zeros++
		if zeros > 64 {
			return 0, fmt.Errorf("%w: gamma prefix too long", ErrMalformed)
		}
	}
	// We consumed the leading 1 of the binary part already.
	rest, err := r.ReadUint(zeros)
	if err != nil {
		return 0, err
	}
	return 1<<uint(zeros) | rest, nil
}

// ReadGamma0 consumes a gamma code written by AppendGamma0.
func (r *Reader) ReadGamma0() (uint64, error) {
	v, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// ReadDelta consumes an Elias delta code.
func (r *Reader) ReadDelta() (uint64, error) {
	nb, err := r.ReadGamma()
	if err != nil {
		return 0, err
	}
	if nb == 0 || nb > 64 {
		return 0, fmt.Errorf("%w: delta length %d", ErrMalformed, nb)
	}
	if nb == 1 {
		return 1, nil
	}
	rest, err := r.ReadUint(int(nb - 1))
	if err != nil {
		return 0, err
	}
	return 1<<(nb-1) | rest, nil
}

// ReadDelta0 consumes a delta code written by AppendDelta0.
func (r *Reader) ReadDelta0() (uint64, error) {
	v, err := r.ReadDelta()
	if err != nil {
		return 0, err
	}
	return v - 1, nil
}

// WidthFor returns the number of bits needed to represent values in [0, n),
// i.e. ceil(log2 n), with WidthFor(0) == WidthFor(1) == 0.
func WidthFor(n uint64) int {
	if n <= 1 {
		return 0
	}
	return bits.Len64(n - 1)
}

// GammaLen returns the length in bits of the gamma code of v >= 1.
func GammaLen(v uint64) int {
	nb := bits.Len64(v)
	return 2*nb - 1
}

// DeltaLen returns the length in bits of the delta code of v >= 1.
func DeltaLen(v uint64) int {
	nb := bits.Len64(v)
	return GammaLen(uint64(nb)) + nb - 1
}
