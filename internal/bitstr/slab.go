package bitstr

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Slab support: many labels packed into one caller-owned byte slab, each
// label starting on a 64-bit word boundary. The slab stores bits MSB-first
// within each 8-byte big-endian word, which makes the byte order identical
// to the MSB-first-within-byte order of String — so a (byte offset, bit
// length) window of a slab is a valid String view via Wrap, while word-sized
// reads and writes go through single 64-bit loads and stores.
//
// This layout is shared by three consumers: core's encode pipeline writes
// labels directly into a slab (no per-label allocation), core.QueryEngine
// adopts a slab zero-copy as its probe arena, and labelstore's format v2
// round-trips the slab as one body blob.

// SlabWordBits is the alignment granularity of slab labels, in bits.
const SlabWordBits = 64

// SlabWords returns the number of 64-bit words a label of nBits occupies in
// a slab (labels are padded to a word boundary so no two labels share a
// word).
func SlabWords(nBits int) int { return (nBits + 63) >> 6 }

// SlabBytes returns the slab size in bytes for a total word count.
func SlabBytes(words int) int { return words << 3 }

// SlabView wraps the label occupying bits [off, off+nBits) of slab as a
// zero-copy String. off must be word-aligned (a slab label start).
func SlabView(slab []byte, off int64, nBits int) (String, error) {
	if off < 0 || off&63 != 0 {
		return String{}, fmt.Errorf("%w: slab view at unaligned bit %d", ErrMalformed, off)
	}
	start := int(off >> 3)
	end := start + (nBits+7)>>3
	if nBits < 0 || end > len(slab) {
		return String{}, fmt.Errorf("%w: slab view [%d,%d) of %d bytes", ErrOutOfBounds, start, end, len(slab))
	}
	return Wrap(slab[start:end:end], nBits)
}

// SlabViews builds zero-copy views of every label in a writer-produced
// slab, given the labels' bit lengths in slab order. It is the batch
// counterpart of SlabView for slabs whose padding bits are known to be zero
// — SlabWriter guarantees this (Flush stores whole words with zero tails,
// untouched words stay zero-initialized) — so unlike Wrap it never masks
// the final byte of a view, touching no slab memory at all. Layout safety
// is still checked: lengths must be non-negative and tile the slab exactly,
// word-aligned. Do not use on bytes from an untrusted source; dirty padding
// would break String equality (use SlabView, which masks in place).
func SlabViews(slab []byte, bitLens []int) ([]String, error) {
	views := make([]String, len(bitLens))
	var off int64
	for v, bits := range bitLens {
		end := off + int64((bits+7)>>3)
		if bits < 0 || end > int64(len(slab)) {
			return nil, fmt.Errorf("%w: slab label %d of %d bits at byte %d in %d-byte slab",
				ErrOutOfBounds, v, bits, off, len(slab))
		}
		views[v] = String{data: slab[off:end:end], n: bits}
		off += int64(SlabWords(bits)) << 3
	}
	if off != int64(len(slab)) {
		return nil, fmt.Errorf("%w: labels occupy %d of %d slab bytes", ErrMalformed, off, len(slab))
	}
	return views, nil
}

// SlabViewsPermuted is SlabViews for a physically permuted slab: the label
// stored at slab rank r (the r-th word-aligned slot) is label order[r], so
// the slot holds bitLens[order[r]] bits. The returned views are indexed by
// label number — views[v] is label v wherever it physically lives — which
// restores id-indexed lookup over a degree-ordered (or otherwise reordered)
// arena. order must be a permutation of 0..len(bitLens)-1; like SlabViews it
// never masks or writes, so it is safe over read-only mappings, and the same
// zero-padding caveat applies. A nil order is the identity.
func SlabViewsPermuted(slab []byte, bitLens []int, order []int32) ([]String, error) {
	if order == nil {
		return SlabViews(slab, bitLens)
	}
	n := len(bitLens)
	if len(order) != n {
		return nil, fmt.Errorf("%w: permutation of %d entries over %d labels", ErrMalformed, len(order), n)
	}
	views := make([]String, n)
	seen := make([]uint64, (n+63)>>6)
	var off int64
	for r, v32 := range order {
		v := int(v32)
		if v < 0 || v >= n {
			return nil, fmt.Errorf("%w: permutation entry %d = %d of %d labels", ErrMalformed, r, v32, n)
		}
		if seen[v>>6]&(1<<uint(v&63)) != 0 {
			return nil, fmt.Errorf("%w: permutation repeats label %d at rank %d", ErrMalformed, v, r)
		}
		seen[v>>6] |= 1 << uint(v&63)
		bits := bitLens[v]
		end := off + int64((bits+7)>>3)
		if bits < 0 || end > int64(len(slab)) {
			return nil, fmt.Errorf("%w: slab label %d of %d bits at byte %d in %d-byte slab",
				ErrOutOfBounds, v, bits, off, len(slab))
		}
		views[v] = String{data: slab[off:end:end], n: bits}
		off += int64(SlabWords(bits)) << 3
	}
	if off != int64(len(slab)) {
		return nil, fmt.Errorf("%w: labels occupy %d of %d slab bytes", ErrMalformed, off, len(slab))
	}
	return views, nil
}

// SlabSetBit sets bit pos of the slab to 1 in place — the word-free OR store
// used for fat adjacency bitmaps, whose bit positions are computed rather
// than appended. The surrounding word must already be materialized (slabs
// are zero-initialized, so any position inside an allocated label is valid).
func SlabSetBit(slab []byte, pos int64) {
	slab[pos>>3] |= 1 << (7 - uint(pos&7))
}

// SlabReadBits returns w (1..64) bits of the slab starting at bit offset
// off, MSB first. The caller guarantees [off, off+w) lies inside the slab's
// bit range; because slabs are whole words, a read never runs past the
// backing slice (a read crossing into word i+1 implies the slab has at least
// i+2 words). This is the single probe primitive of the query engine.
func SlabReadBits(slab []byte, off int64, w int) uint64 {
	i := int(off>>6) << 3
	sh := uint(off & 63)
	v := binary.BigEndian.Uint64(slab[i:]) << sh
	if sh+uint(w) > 64 {
		v |= binary.BigEndian.Uint64(slab[i+8:]) >> (64 - sh)
	}
	return v >> (64 - uint(w))
}

// SlabWriter writes bit strings into a borrowed slab at word granularity: it
// buffers up to 64 bits and emits one big-endian 64-bit store per filled
// word, instead of the byte-at-a-time append-and-double of Builder. One
// writer serves any number of labels; SeekBit repositions it to the next
// label's word-aligned start. Distinct goroutines may fill disjoint labels
// of the same slab with separate writers — word alignment guarantees they
// never store to the same word.
//
// The writer assumes the slab is zero-initialized and that each label is
// written at most once (stores overwrite whole words).
type SlabWriter struct {
	slab []byte
	word int    // byte offset of the word the buffer will be stored to
	acc  uint64 // bits buffered so far, left-aligned
	fill uint   // number of buffered bits
}

// NewSlabWriter returns a writer over slab, positioned at bit 0.
func NewSlabWriter(slab []byte) *SlabWriter {
	return &SlabWriter{slab: slab}
}

// SeekBit positions the writer at bit offset pos, which must be word-aligned
// (labels start on word boundaries). Buffered bits of the previous label are
// flushed first.
func (w *SlabWriter) SeekBit(pos int64) {
	w.Flush()
	w.word = int(pos>>6) << 3
	w.acc, w.fill = 0, 0
}

// Pos returns the absolute bit offset the next write lands at.
func (w *SlabWriter) Pos() int64 {
	return int64(w.word)<<3 + int64(w.fill)
}

// WriteBit appends a single bit.
func (w *SlabWriter) WriteBit(bit bool) {
	if bit {
		w.WriteUint(1, 1)
	} else {
		w.WriteUint(0, 1)
	}
}

// WriteUint appends the low `width` bits of v, most significant bit first.
// width must be in [0, 64]; bits of v above width are masked off.
func (w *SlabWriter) WriteUint(v uint64, width int) {
	if width <= 0 {
		return
	}
	if width < 64 {
		v &= (1 << uint(width)) - 1
	}
	if w.fill+uint(width) < 64 {
		w.acc |= v << (64 - w.fill - uint(width))
		w.fill += uint(width)
		return
	}
	spill := w.fill + uint(width) - 64
	binary.BigEndian.PutUint64(w.slab[w.word:], w.acc|v>>spill)
	w.word += 8
	w.acc, w.fill = 0, 0
	if spill > 0 {
		w.acc = v << (64 - spill)
		w.fill = spill
	}
}

// WriteUints appends every value of vs at the given width, equivalent to
// calling WriteUint per element but with the buffer state kept in registers
// across the whole batch — the packed-store fast path for thin neighbor
// lists, where one call writes an entire label body.
func (w *SlabWriter) WriteUints(vs []uint64, width int) {
	if width <= 0 || width > 64 {
		return
	}
	mask := ^uint64(0) >> uint(64-width)
	acc, fill, word, slab := w.acc, w.fill, w.word, w.slab
	for _, v := range vs {
		v &= mask
		if fill+uint(width) < 64 {
			acc |= v << (64 - fill - uint(width))
			fill += uint(width)
			continue
		}
		spill := fill + uint(width) - 64
		binary.BigEndian.PutUint64(slab[word:], acc|v>>spill)
		word += 8
		acc, fill = 0, 0
		if spill > 0 {
			acc = v << (64 - spill)
			fill = spill
		}
	}
	w.acc, w.fill, w.word = acc, fill, word
}

// WriteUints32 is WriteUints for non-negative 32-bit values — the encode
// pipeline's neighbor identifiers are int32, and packing them without a
// widening copy keeps the fill loop to one pass over the id lists.
func (w *SlabWriter) WriteUints32(vs []int32, width int) {
	if width <= 0 || width > 64 {
		return
	}
	mask := ^uint64(0) >> uint(64-width)
	acc, fill, word, slab := w.acc, w.fill, w.word, w.slab
	for _, x := range vs {
		v := uint64(uint32(x)) & mask
		if fill+uint(width) < 64 {
			acc |= v << (64 - fill - uint(width))
			fill += uint(width)
			continue
		}
		spill := fill + uint(width) - 64
		binary.BigEndian.PutUint64(slab[word:], acc|v>>spill)
		word += 8
		acc, fill = 0, 0
		if spill > 0 {
			acc = v << (64 - spill)
			fill = spill
		}
	}
	w.acc, w.fill, w.word = acc, fill, word
}

// WriteDelta0 appends v >= 0 as the Elias delta code of v+1, bit-identical
// to Builder.AppendDelta0.
func (w *SlabWriter) WriteDelta0(v uint64) {
	v++
	nb := bits.Len64(v)
	gnb := bits.Len64(uint64(nb))
	// Gamma code of nb: gnb-1 leading zeros then nb in gnb bits — exactly nb
	// written in 2·gnb-1 bits.
	w.WriteUint(uint64(nb), 2*gnb-1)
	if nb > 1 {
		w.WriteUint(v, nb-1) // drop the leading 1 bit (masked by width)
	}
}

// Flush stores any buffered bits as a full word (trailing bits zero). Safe
// because the current word belongs exclusively to the label being written
// and its tail is padding. Flush is idempotent; call it after each label.
func (w *SlabWriter) Flush() {
	if w.fill == 0 {
		return
	}
	binary.BigEndian.PutUint64(w.slab[w.word:], w.acc)
	w.word += 8
	w.acc, w.fill = 0, 0
}
