package bitstr

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length mutable bit vector with optional O(1) rank
// support. It backs the "fat bit string" part of the labeling schemes: fat
// vertex i sets bit j iff it is adjacent to fat vertex j.
type Vector struct {
	words []uint64
	n     int
	// rank[i] = number of set bits in words[0:i]; built lazily by
	// BuildRank and invalidated by Set/Clear.
	rank []uint32
}

// NewVector returns an all-zero vector of n bits.
func NewVector(n int) *Vector {
	if n < 0 {
		n = 0
	}
	return &Vector{words: make([]uint64, (n+63)>>6), n: n}
}

// VectorFromString interprets a bit string (as produced by Vector.Append)
// of length n as a vector.
func VectorFromString(s String, offset, n int) (*Vector, error) {
	if offset < 0 || n < 0 || offset+n > s.Len() {
		return nil, fmt.Errorf("%w: vector [%d,%d) of %d", ErrOutOfBounds, offset, offset+n, s.Len())
	}
	v := NewVector(n)
	r := NewReader(s)
	if err := r.Seek(offset); err != nil {
		return nil, err
	}
	for i := 0; i < n; i += 64 {
		w := n - i
		if w > 64 {
			w = 64
		}
		chunk, err := r.ReadUint(w)
		if err != nil {
			return nil, err
		}
		// Left-align within the word to match Set/Get layout below.
		v.words[i>>6] = chunk << uint(64-w)
	}
	return v, nil
}

// Len returns the number of bits.
func (v *Vector) Len() int { return v.n }

// Reset zeroes every bit, retaining the allocated words. Encoders reuse one
// vector across vertices instead of allocating per label.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
	v.rank = nil
}

// Grow extends the vector to at least n bits, preserving existing bits; new
// bits are zero. A no-op when the vector is already long enough. Callers
// that reuse one vector across differently-sized inputs (encoders pooling
// scratch) grow once instead of reallocating per use.
func (v *Vector) Grow(n int) {
	if n <= v.n {
		return
	}
	need := (n + 63) >> 6
	if need > len(v.words) {
		if need <= cap(v.words) {
			v.words = v.words[:need]
		} else {
			// Amortized doubling: callers growing one bit at a time (e.g. the
			// adjacency-matrix encoder walking vertices in order) pay O(n)
			// total, not O(n) reallocations.
			newCap := 2 * cap(v.words)
			if newCap < need {
				newCap = need
			}
			nw := make([]uint64, need, newCap)
			copy(nw, v.words)
			v.words = nw
		}
	}
	v.n = n
	v.rank = nil
}

// Set sets bit i to 1.
func (v *Vector) Set(i int) {
	v.words[i>>6] |= 1 << (63 - uint(i&63))
	v.rank = nil
}

// Clear sets bit i to 0.
func (v *Vector) Clear(i int) {
	v.words[i>>6] &^= 1 << (63 - uint(i&63))
	v.rank = nil
}

// Get returns bit i.
func (v *Vector) Get(i int) bool {
	return v.words[i>>6]&(1<<(63-uint(i&63))) != 0
}

// Count returns the total number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// BuildRank precomputes per-word prefix popcounts enabling O(1) Rank.
func (v *Vector) BuildRank() {
	v.rank = make([]uint32, len(v.words)+1)
	var c uint32
	for i, w := range v.words {
		v.rank[i] = c
		c += uint32(bits.OnesCount64(w))
	}
	v.rank[len(v.words)] = c
}

// Rank returns the number of set bits strictly before position i.
// If BuildRank has not been called (or the vector changed since), it falls
// back to a linear scan.
func (v *Vector) Rank(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.n {
		i = v.n
	}
	word, off := i>>6, uint(i&63)
	if v.rank != nil {
		c := int(v.rank[word])
		if off != 0 {
			c += bits.OnesCount64(v.words[word] >> (64 - off) << (64 - off))
		}
		return c
	}
	c := 0
	for k := 0; k < word; k++ {
		c += bits.OnesCount64(v.words[k])
	}
	if off != 0 {
		c += bits.OnesCount64(v.words[word] >> (64 - off) << (64 - off))
	}
	return c
}

// Append writes the vector's bits (in index order) onto a builder.
func (v *Vector) Append(b *Builder) {
	for i := 0; i < v.n; i += 64 {
		w := v.n - i
		if w > 64 {
			w = 64
		}
		b.AppendUint(v.words[i>>6]>>uint(64-w), w)
	}
}
