package obs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startAdmin boots an admin server on a free port and returns its base URL.
func startAdmin(t *testing.T, a *AdminServer) string {
	t.Helper()
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := a.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	})
	return "http://" + addr.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	var served Counter
	served.Add(123)
	reg.Counter("admin_test_served_total", "Served.", &served)
	RegisterRuntimeMetrics(reg)

	a := NewAdminServer(reg)
	ready := false
	a.Readyz = func() error {
		if !ready {
			return errors.New("still warming up")
		}
		return nil
	}
	base := startAdmin(t, a)

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "warming up") {
		t.Errorf("/readyz (unready) = %d %q, want 503", code, body)
	}
	ready = true
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz (ready) = %d, want 200", code)
	}

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"admin_test_served_total 123",
		"# TYPE go_goroutines gauge",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// pprof must be mounted: cmdline is the cheapest endpoint that proves
	// the whole suite is wired (profile/trace sample for seconds).
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline = %d (%d bytes), want 200 non-empty", code, len(body))
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index = %d, want 200 with profile listing", code)
	}
}

// TestAdminPprofSuite checks every always-on pprof endpoint answers 200 with
// a body — the profiling plane must survive refactors of the admin mux.
func TestAdminPprofSuite(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	base := startAdmin(t, a)
	for _, ep := range []string{
		"/debug/pprof/",
		"/debug/pprof/cmdline",
		"/debug/pprof/goroutine?debug=1",
		"/debug/pprof/heap?debug=1",
		"/debug/pprof/allocs?debug=1",
		"/debug/pprof/threadcreate?debug=1",
		"/debug/pprof/block?debug=1",
		"/debug/pprof/mutex?debug=1",
	} {
		if code, body := get(t, base+ep); code != http.StatusOK || len(body) == 0 {
			t.Errorf("%s = %d (%d bytes), want 200 non-empty", ep, code, len(body))
		}
	}
}

// TestAdminTraceEndpoints checks /debug/traces and /debug/slowlog render the
// sink's rings as JSON, and answer an empty document when no sink is set.
func TestAdminTraceEndpoints(t *testing.T) {
	reg := NewRegistry()
	a := NewAdminServer(reg)
	base := startAdmin(t, a)

	// No sink installed: both endpoints answer valid empty documents.
	for _, ep := range []string{"/debug/traces", "/debug/slowlog"} {
		code, body := get(t, base+ep)
		if code != http.StatusOK {
			t.Fatalf("%s (no sink) = %d", ep, code)
		}
		var doc map[string]any
		if err := json.Unmarshal([]byte(body), &doc); err != nil {
			t.Fatalf("%s (no sink) bad JSON: %v", ep, err)
		}
	}

	sink := &TraceSink{Ring: NewTraceRing(8), Slow: NewTraceRing(8)}
	a.SetTraceSink(sink)
	var tally SpanTally
	tally.ID = 42
	tally.Add(StageProbe, HopSelf, 100)
	var tr Trace
	tr.Fill(&tally, 1, 8, 100)
	sink.Deposit(&tr)
	tr.ID = 43
	sink.DepositSlow(&tr)

	var doc struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
		} `json:"traces"`
	}
	code, body := get(t, base+"/debug/traces")
	if code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/traces bad JSON: %v\n%s", err, body)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].TraceID != TraceID(42) {
		t.Errorf("/debug/traces = %+v, want trace 42", doc.Traces)
	}
	code, body = get(t, base+"/debug/slowlog")
	if code != http.StatusOK {
		t.Fatalf("/debug/slowlog = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/slowlog bad JSON: %v\n%s", err, body)
	}
	if len(doc.Traces) != 1 || doc.Traces[0].TraceID != TraceID(43) {
		t.Errorf("/debug/slowlog = %+v, want trace 43", doc.Traces)
	}
}

// TestAdminConcurrentRender hammers /metrics and /debug/traces from several
// goroutines while the instrumented values keep changing — the registry's
// gather path and the trace ring's slot locking must hold up under -race.
func TestAdminConcurrentRender(t *testing.T) {
	reg := NewRegistry()
	var served Counter
	var lat Histogram
	reg.Counter("admin_cc_served_total", "Served.", &served)
	reg.Histogram("admin_cc_latency_ns", "Latency.", &lat)
	sink := &TraceSink{Ring: NewTraceRing(16)}
	a := NewAdminServer(reg)
	a.SetTraceSink(sink)
	base := startAdmin(t, a)

	stop := make(chan struct{})
	var writers sync.WaitGroup
	writers.Add(1)
	go func() {
		defer writers.Done()
		var tally SpanTally
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			served.Inc()
			lat.ObserveExemplar(int64(i%1000+1), uint64(i+1))
			tally.Reset()
			tally.ID = uint64(i + 1)
			tally.Add(StageProbe, HopSelf, int64(i))
			var tr Trace
			tr.Fill(&tally, 1, 1, int64(i))
			sink.Deposit(&tr)
		}
	}()
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				ep := "/metrics"
				if (w+i)%2 == 0 {
					ep = "/debug/traces"
				}
				if code, _ := get(t, base+ep); code != http.StatusOK {
					t.Errorf("%s = %d under concurrency", ep, code)
					return
				}
			}
		}(w)
	}
	readers.Wait()
	close(stop)
	writers.Wait()
}

// TestAdminReadyzDrainOrdering pins the drain contract daemons rely on: the
// readiness probe flips to 503 the instant the probe function says so, while
// /healthz and /metrics keep answering 200 so the final scrape still lands —
// and only then is the admin listener shut down.
func TestAdminReadyzDrainOrdering(t *testing.T) {
	reg := NewRegistry()
	var served Counter
	served.Add(7)
	reg.Counter("admin_drain_served_total", "Served.", &served)
	var ready atomic.Bool
	a := NewAdminServer(reg)
	a.Readyz = func() error {
		if !ready.Load() {
			return errors.New("draining")
		}
		return nil
	}
	base := startAdmin(t, a)

	ready.Store(true)
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz while serving = %d, want 200", code)
	}
	// Drain starts: readiness flips first...
	ready.Store(false)
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "draining") {
		t.Errorf("/readyz during drain = %d %q, want 503 draining", code, body)
	}
	// ...while liveness and the final scrape still answer.
	if code, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", code)
	}
	if code, body := get(t, base+"/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "admin_drain_served_total 7") {
		t.Errorf("final scrape during drain = %d, missing counters:\n%s", code, body)
	}
	// Shutdown happens in the startAdmin cleanup, strictly after the above.
}

func TestAdminContentType(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	base := startAdmin(t, a)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	if err := a.Serve(); err == nil {
		t.Fatal("Serve before Listen succeeded")
	}
}

func TestListenBadAddr(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	if _, err := a.Listen("256.256.256.256:0"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func ExampleRegistry() {
	reg := NewRegistry()
	var queries Counter
	reg.Counter("example_queries_total", "Queries answered.", &queries)
	queries.Add(2)
	fmt.Print(reg.Expose())
	// Output:
	// # HELP example_queries_total Queries answered.
	// # TYPE example_queries_total counter
	// example_queries_total 2
}
