package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startAdmin boots an admin server on a free port and returns its base URL.
func startAdmin(t *testing.T, a *AdminServer) string {
	t.Helper()
	addr, err := a.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := a.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			t.Errorf("serve: %v", err)
		}
	})
	return "http://" + addr.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	reg := NewRegistry()
	var served Counter
	served.Add(123)
	reg.Counter("admin_test_served_total", "Served.", &served)
	RegisterRuntimeMetrics(reg)

	a := NewAdminServer(reg)
	ready := false
	a.Readyz = func() error {
		if !ready {
			return errors.New("still warming up")
		}
		return nil
	}
	base := startAdmin(t, a)

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "warming up") {
		t.Errorf("/readyz (unready) = %d %q, want 503", code, body)
	}
	ready = true
	if code, _ := get(t, base+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz (ready) = %d, want 200", code)
	}

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"admin_test_served_total 123",
		"# TYPE go_goroutines gauge",
		"go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	// pprof must be mounted: cmdline is the cheapest endpoint that proves
	// the whole suite is wired (profile/trace sample for seconds).
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != http.StatusOK || len(body) == 0 {
		t.Errorf("/debug/pprof/cmdline = %d (%d bytes), want 200 non-empty", code, len(body))
	}
	if code, body := get(t, base+"/debug/pprof/"); code != http.StatusOK ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index = %d, want 200 with profile listing", code)
	}
}

func TestAdminContentType(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	base := startAdmin(t, a)
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 exposition type", ct)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

func TestServeBeforeListen(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	if err := a.Serve(); err == nil {
		t.Fatal("Serve before Listen succeeded")
	}
}

func TestListenBadAddr(t *testing.T) {
	a := NewAdminServer(NewRegistry())
	if _, err := a.Listen("256.256.256.256:0"); err == nil {
		t.Fatal("bad address accepted")
	}
}

func ExampleRegistry() {
	reg := NewRegistry()
	var queries Counter
	reg.Counter("example_queries_total", "Queries answered.", &queries)
	queries.Add(2)
	fmt.Print(reg.Expose())
	// Output:
	// # HELP example_queries_total Queries answered.
	// # TYPE example_queries_total counter
	// example_queries_total 2
}
