package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact exposition bytes for one of every
// metric kind: the text format is an interface other tools parse, so it is
// golden-tested, not spot-checked.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	var reqs Counter
	reqs.Add(42)
	reg.Counter("demo_requests_total", "Requests answered.", &reqs, "scheme", "fatthin")
	var inflight Gauge
	inflight.Set(3)
	reg.Gauge("demo_inflight", "Outstanding calls.", &inflight)
	reg.CounterFunc("demo_fn_total", "Computed counter.", func() int64 { return 7 })
	var h Histogram
	h.Observe(1)  // le=1
	h.Observe(3)  // le=4
	h.Observe(3)  // le=4
	h.Observe(60) // le=64
	reg.Histogram("demo_latency_ns", "Frame latency.", &h, "batch", "4096")

	want := `# HELP demo_requests_total Requests answered.
# TYPE demo_requests_total counter
demo_requests_total{scheme="fatthin"} 42
# HELP demo_inflight Outstanding calls.
# TYPE demo_inflight gauge
demo_inflight 3
# HELP demo_fn_total Computed counter.
# TYPE demo_fn_total counter
demo_fn_total 7
# HELP demo_latency_ns Frame latency.
# TYPE demo_latency_ns histogram
demo_latency_ns_bucket{batch="4096",le="1"} 1
demo_latency_ns_bucket{batch="4096",le="4"} 3
demo_latency_ns_bucket{batch="4096",le="64"} 4
demo_latency_ns_bucket{batch="4096",le="+Inf"} 4
demo_latency_ns_sum{batch="4096"} 67
demo_latency_ns_count{batch="4096"} 4
`
	if got := reg.Expose(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMultipleSeriesOneFamily(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter
	a.Add(1)
	b.Add(2)
	reg.Counter("multi_total", "Multi-series.", &a, "mode", "mmap")
	reg.Counter("multi_total", "Multi-series.", &b, "mode", "copy")
	out := reg.Expose()
	if strings.Count(out, "# TYPE multi_total counter") != 1 {
		t.Fatalf("family header not deduplicated:\n%s", out)
	}
	for _, line := range []string{`multi_total{mode="mmap"} 1`, `multi_total{mode="copy"} 2`} {
		if !strings.Contains(out, line) {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	reg.Counter("esc_total", "Help with \\ backslash\nand newline.", &c, "path", `C:\x "q"`+"\n")
	out := reg.Expose()
	if !strings.Contains(out, `# HELP esc_total Help with \\ backslash\nand newline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{path="C:\\x \"q\"\n"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	var c Counter
	var g Gauge
	mustPanic("bad name", func() { NewRegistry().Counter("bad-name", "h", &c) })
	mustPanic("leading digit", func() { NewRegistry().Counter("0bad", "h", &c) })
	mustPanic("odd labels", func() { NewRegistry().Counter("ok_total", "h", &c, "key") })
	mustPanic("type clash", func() {
		reg := NewRegistry()
		reg.Counter("clash", "h", &c)
		reg.Gauge("clash", "h", &g)
	})
	mustPanic("help clash", func() {
		reg := NewRegistry()
		reg.Counter("clash", "h1", &c)
		reg.Counter("clash", "h2", &c, "l", "v")
	})
	mustPanic("duplicate series", func() {
		reg := NewRegistry()
		reg.Counter("dup", "h", &c, "l", "v")
		reg.Counter("dup", "h", &c, "l", "v")
	})
}

func TestOnGatherRunsBeforeValues(t *testing.T) {
	reg := NewRegistry()
	snapshot := int64(0)
	reg.OnGather(func() { snapshot = 99 })
	reg.GaugeFunc("hooked", "Reads the hook snapshot.", func() int64 { return snapshot })
	if out := reg.Expose(); !strings.Contains(out, "hooked 99") {
		t.Fatalf("gather hook did not run before value funcs:\n%s", out)
	}
}
