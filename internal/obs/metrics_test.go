package obs

import (
	"math/bits"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

// TestBucketIndexBoundaries pins the bucket function at every power-of-two
// boundary: v lands in the smallest bucket whose bound 2^i satisfies v <= 2^i.
func TestBucketIndexBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // bucket 0: v <= 1
		{2, 1},         // le=2
		{3, 2}, {4, 2}, // le=4
		{5, 3}, {8, 3}, // le=8
		{9, 4}, {16, 4},
		{1 << 20, 20}, {1<<20 + 1, 21},
		{histMaxFinite, HistogramBuckets - 2},
		{histMaxFinite + 1, HistogramBuckets - 1}, // +Inf overflow
		{int64(1) << 62, HistogramBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(tc.v); got != tc.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
	// Exhaustive invariant over a wide sample: every value is <= its bound
	// and > the previous bucket's bound (finite buckets only).
	for shift := 0; shift < 38; shift++ {
		for _, v := range []int64{(1 << shift) - 1, 1 << shift, (1 << shift) + 1} {
			if v < 1 {
				continue
			}
			i := bucketIndex(v)
			if ub := BucketBound(i); ub >= 0 && v > ub {
				t.Fatalf("v=%d in bucket %d with bound %d", v, i, ub)
			}
			if i > 0 {
				if lb := BucketBound(i - 1); v <= lb {
					t.Fatalf("v=%d in bucket %d but fits bucket %d (bound %d)", v, i, i-1, lb)
				}
			}
		}
	}
	_ = bits.Len64 // keep the import obviously tied to the function under test
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 1106 {
		t.Fatalf("sum = %d, want 1106", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
	// 1000 observations uniform in (512, 1024]: all land in the le=1024
	// bucket, so interpolation should spread quantiles across (512, 1024].
	for i := 0; i < 1000; i++ {
		h.Observe(513 + int64(i)%512)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 512 || p50 > 1024 {
		t.Fatalf("p50 = %d, want within (512, 1024]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 1024 {
		t.Fatalf("p99 = %d, want within [p50=%d, 1024]", p99, p50)
	}
	// A bimodal distribution: quantiles must respect bucket ordering.
	var h2 Histogram
	for i := 0; i < 90; i++ {
		h2.Observe(100) // le=128
	}
	for i := 0; i < 10; i++ {
		h2.Observe(1 << 20) // le=2^20
	}
	if p50 := h2.Quantile(0.5); p50 > 128 {
		t.Fatalf("bimodal p50 = %d, want <= 128", p50)
	}
	if p99 := h2.Quantile(0.99); p99 <= 128 {
		t.Fatalf("bimodal p99 = %d, want in the slow mode", p99)
	}
}

func TestHistogramOverflowQuantile(t *testing.T) {
	var h Histogram
	h.Observe(int64(1) << 60)
	if got := h.Quantile(0.99); got != histMaxFinite {
		t.Fatalf("overflow p99 = %d, want saturated %d", got, histMaxFinite)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Nanosecond)
	if got := h.Sum(); got != 1500 {
		t.Fatalf("sum = %d, want 1500", got)
	}
	if d := h.QuantileDuration(1); d < time.Microsecond || d > 2048*time.Nanosecond {
		t.Fatalf("p100 = %v, want within the le=2048ns bucket", d)
	}
}

// TestConcurrentObserveAddRender hammers every primitive from many
// goroutines while a renderer scrapes — the -race proof that the metrics
// core is lock-free-safe under fire.
func TestConcurrentObserveAddRender(t *testing.T) {
	reg := NewRegistry()
	var (
		c Counter
		g Gauge
		h Histogram
	)
	reg.Counter("storm_total", "c", &c)
	reg.Gauge("storm_gauge", "g", &g)
	reg.Histogram("storm_ns", "h", &h)

	const workers, perWorker = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i%4096) + 1)
			}
		}(w)
	}
	stop := make(chan struct{})
	var renderWG sync.WaitGroup
	renderWG.Add(1)
	go func() {
		defer renderWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Expose()
				_ = h.Quantile(0.99)
			}
		}
	}()
	wg.Wait()
	close(stop)
	renderWG.Wait()

	if got := c.Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
	if got := g.Load(); got != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantilesEmpty(t *testing.T) {
	var h Histogram
	for i, got := range h.Quantiles(0, 0.5, 0.999, 1) {
		if got != 0 {
			t.Fatalf("empty histogram Quantiles[%d] = %d, want 0", i, got)
		}
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(700) // le=1024 bucket, lower bound 512
	qs := h.Quantiles(0, 0.5, 1)
	for i, got := range qs {
		if got <= 0 || got > 1024 {
			t.Fatalf("single-sample Quantiles[%d] = %d, want within (0, 1024]", i, got)
		}
	}
	// All quantiles of a one-sample histogram live in the same bucket, so
	// they may differ by interpolation but never by more than the bucket.
	if qs[0] > qs[1] || qs[1] > qs[2] {
		t.Fatalf("single-sample quantiles not monotone: %v", qs)
	}
	if got := h.Quantile(1); got > 1024 || got <= 512 {
		t.Fatalf("single-sample p100 = %d, want within its (512, 1024] bucket", got)
	}
}

func TestHistogramQuantileClamp(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(int64(i) + 1)
	}
	lo, hi := h.Quantile(-0.5), h.Quantile(1.5)
	if want := h.Quantile(0); lo != want {
		t.Fatalf("Quantile(-0.5) = %d, want Quantile(0) = %d", lo, want)
	}
	if want := h.Quantile(1); hi != want {
		t.Fatalf("Quantile(1.5) = %d, want Quantile(1) = %d", hi, want)
	}
}

func TestHistogramOverflowQuantiles(t *testing.T) {
	var h Histogram
	// Half the mass in a finite bucket, half in the overflow: low quantiles
	// are finite, high quantiles saturate at histMaxFinite instead of
	// fabricating values beyond the tracked range.
	for i := 0; i < 50; i++ {
		h.Observe(1000)
	}
	for i := 0; i < 50; i++ {
		h.Observe(int64(1) << 50)
	}
	qs := h.Quantiles(0.25, 0.99)
	if qs[0] > 1024 {
		t.Fatalf("p25 = %d, want within the le=1024 bucket", qs[0])
	}
	if qs[1] != histMaxFinite {
		t.Fatalf("p99 = %d, want saturated %d", qs[1], histMaxFinite)
	}
}

// TestHistogramQuantilesMonotoneUnderLoad verifies the one property Quantiles
// adds over repeated Quantile calls: because all values come from a single
// bucket snapshot, sorted qs yield monotone results even while writers are
// recording. (Repeated Quantile calls each re-snapshot, so a write landing
// between the p50 and p99 reads can legally produce p99 < p50.)
func TestHistogramQuantilesMonotoneUnderLoad(t *testing.T) {
	var h Histogram
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := int64(w + 1)
			for {
				select {
				case <-stop:
					return
				default:
					// Walk the full finite range so snapshots race with mass
					// moving between distant buckets.
					v = (v*2862933555777941757 + 3037000493) & ((1 << 37) - 1)
					h.Observe(v + 1)
				}
			}
		}(w)
	}
	qs := []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1}
	for iter := 0; iter < 200; iter++ {
		got := h.Quantiles(qs...)
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("iter %d: quantiles %v not monotone for qs %v", iter, got, qs)
			}
		}
	}
	close(stop)
	wg.Wait()
}
