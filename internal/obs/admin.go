package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the always-on introspection surface over a long-running
// daemon (the yggdrasil-style admin socket, realized as plain HTTP): it
// mounts the registry at /metrics, liveness and readiness probes at /healthz
// and /readyz, and the full net/http/pprof suite at /debug/pprof/ — so a
// live plserve can be profiled, health-checked and scraped without a
// restart. The admin server shares nothing with the serving data path
// beyond the registered atomics, so a slow scrape cannot stall a query.
type AdminServer struct {
	// Healthz, when non-nil, gates /healthz: a non-nil error renders 503
	// with the message. Nil means "process is up" always answers 200.
	Healthz func() error
	// Readyz, when non-nil, gates /readyz the same way — the hook for
	// "listening and not draining" daemon state.
	Readyz func() error

	reg  *Registry
	mux  *http.ServeMux
	srv  *http.Server
	ln   net.Listener
	sink *TraceSink
}

// NewAdminServer builds an admin server over reg.
func NewAdminServer(reg *Registry) *AdminServer {
	a := &AdminServer{reg: reg, mux: http.NewServeMux()}
	a.mux.HandleFunc("/metrics", a.handleMetrics)
	a.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) { probe(w, a.Healthz) })
	a.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) { probe(w, a.Readyz) })
	a.mux.HandleFunc("/debug/pprof/", pprof.Index)
	a.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	a.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	a.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	a.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		a.handleTraceRing(w, true)
	})
	a.mux.HandleFunc("/debug/slowlog", func(w http.ResponseWriter, r *http.Request) {
		a.handleTraceRing(w, false)
	})
	a.srv = &http.Server{Handler: a.mux, ReadHeaderTimeout: 5 * time.Second}
	return a
}

// SetTraceSink attaches the daemon's trace sink, enabling /debug/traces
// (sampled ring + histogram exemplars) and /debug/slowlog (threshold-
// captured frames). Call before Serve; without a sink both endpoints answer
// an empty document.
func (a *AdminServer) SetTraceSink(s *TraceSink) { a.sink = s }

// handleTraceRing renders one of the sink's rings as JSON: the sampled ring
// (with histogram exemplars joined in from the registry) or the slowlog.
func (a *AdminServer) handleTraceRing(w http.ResponseWriter, sampled bool) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	var ring *TraceRing
	var reg *Registry
	if a.sink != nil {
		if sampled {
			ring, reg = a.sink.Ring, a.reg
		} else {
			ring = a.sink.Slow
		}
	}
	_ = WriteTracesJSON(w, ring, reg)
}

// Handler returns the admin mux, for mounting under an existing server.
func (a *AdminServer) Handler() http.Handler { return a.mux }

// Listen binds addr (port 0 picks a free port) and returns the resolved
// address. Call Serve afterwards; the split lets callers print the resolved
// port before serving.
func (a *AdminServer) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: admin listen %s: %w", addr, err)
	}
	a.ln = ln
	return ln.Addr(), nil
}

// Serve answers admin requests on the listener bound by Listen until
// Shutdown. It returns http.ErrServerClosed after a clean shutdown.
func (a *AdminServer) Serve() error {
	if a.ln == nil {
		return fmt.Errorf("obs: Serve before Listen")
	}
	return a.srv.Serve(a.ln)
}

// ListenAndServe is Listen followed by Serve.
func (a *AdminServer) ListenAndServe(addr string) error {
	if _, err := a.Listen(addr); err != nil {
		return err
	}
	return a.Serve()
}

// Shutdown gracefully stops the admin server, letting in-flight scrapes
// finish until ctx expires.
func (a *AdminServer) Shutdown(ctx context.Context) error {
	return a.srv.Shutdown(ctx)
}

func (a *AdminServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = a.reg.WritePrometheus(w)
}

// probe renders a health/readiness check: 200 "ok" or 503 with the error.
func probe(w http.ResponseWriter, check func() error) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if check != nil {
		if err := check(); err != nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "unavailable: %v\n", err)
			return
		}
	}
	fmt.Fprintln(w, "ok")
}
