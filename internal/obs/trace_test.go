package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestSpanTallyBasics(t *testing.T) {
	var tally SpanTally
	if tally.Len() != 0 {
		t.Fatalf("zero tally Len = %d", tally.Len())
	}
	tally.Add(StageEncode, HopSelf, 10)
	tally.Add(StageNet, HopSelf, 20)
	tally.Add(StageProbe, HopPeer, 30)
	tally.Add(StageProbe, 2, 40)
	if tally.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tally.Len())
	}
	if got := tally.SumHop(HopSelf); got != 30 {
		t.Errorf("SumHop(self) = %d, want 30", got)
	}
	if got := tally.SumHop(HopPeer); got != 30 {
		t.Errorf("SumHop(peer) = %d, want 30", got)
	}
	if got := tally.SumHop(2); got != 40 {
		t.Errorf("SumHop(2) = %d, want 40", got)
	}
	tally.Reset()
	if tally.Len() != 0 || tally.ID != 0 {
		t.Errorf("Reset left Len=%d ID=%d", tally.Len(), tally.ID)
	}
}

func TestSpanTallyOverflowDrops(t *testing.T) {
	var tally SpanTally
	for i := 0; i < TraceMaxStages+10; i++ {
		tally.Add(StageProbe, HopSelf, 1)
	}
	if tally.Len() != TraceMaxStages {
		t.Fatalf("Len = %d, want cap %d", tally.Len(), TraceMaxStages)
	}
}

func TestMergePeerRelabels(t *testing.T) {
	src := []TraceStage{
		{Stage: StageProbe, Hop: HopSelf, Ns: 5}, // callee's own → relabeled
		{Stage: StageNet, Hop: 3, Ns: 7},         // shard-labeled → pass through
	}
	var dst SpanTally
	dst.MergePeer(src, HopPeer)
	st := dst.Stages()
	if len(st) != 2 {
		t.Fatalf("merged %d stages, want 2", len(st))
	}
	if st[0].Hop != HopPeer || st[0].Stage != StageProbe {
		t.Errorf("stage 0 = %+v, want probe@peer", st[0])
	}
	if st[1].Hop != 3 || st[1].Stage != StageNet {
		t.Errorf("stage 1 = %+v, want net@shard3", st[1])
	}
}

func TestTraceRingSnapshotNewestFirst(t *testing.T) {
	r := NewTraceRing(4)
	if got := r.Snapshot(nil); len(got) != 0 {
		t.Fatalf("empty ring snapshot has %d entries", len(got))
	}
	for i := 1; i <= 6; i++ { // wraps: slots hold 3,4,5,6
		tr := Trace{ID: uint64(i), TotalNs: int64(i)}
		r.Put(&tr)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	snap := r.Snapshot(nil)
	if len(snap) != 4 {
		t.Fatalf("snapshot has %d entries, want 4", len(snap))
	}
	for i, wantID := range []uint64{6, 5, 4, 3} {
		if snap[i].ID != wantID {
			t.Errorf("snapshot[%d].ID = %d, want %d (newest first)", i, snap[i].ID, wantID)
		}
	}
}

func TestTraceRingConcurrent(t *testing.T) {
	r := NewTraceRing(8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := Trace{ID: uint64(w + 1)}
			for i := 0; i < 2000; i++ {
				tr.TotalNs = int64(i)
				r.Put(&tr)
			}
		}(w)
	}
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tr := range r.Snapshot(nil) {
				if tr.ID == 0 || tr.ID > 4 {
					t.Errorf("torn trace surfaced: id=%d", tr.ID)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	readerWG.Wait()
}

func TestTraceSinkPolicies(t *testing.T) {
	var nilSink *TraceSink
	if nilSink.SampleNow() {
		t.Error("nil sink samples")
	}
	if nilSink.SlowThreshold() != 0 {
		t.Error("nil sink has a slow threshold")
	}
	nilSink.Deposit(&Trace{})     // must not panic
	nilSink.DepositSlow(&Trace{}) // must not panic

	s := &TraceSink{Ring: NewTraceRing(8), Slow: NewTraceRing(8), SampleEvery: 3, SlowNs: 100}
	hits := 0
	for i := 0; i < 9; i++ {
		if s.SampleNow() {
			hits++
		}
	}
	if hits != 3 {
		t.Errorf("SampleEvery=3 over 9 frames sampled %d, want 3", hits)
	}
	if got := s.SlowThreshold(); got != 100 {
		t.Errorf("SlowThreshold = %d, want 100", got)
	}

	var slowSeen *Trace
	s.OnSlow = func(tr *Trace) { slowSeen = tr }
	tr := Trace{ID: 7, TotalNs: 150}
	s.Deposit(&tr)
	s.DepositSlow(&tr)
	if s.Sampled.Load() != 1 || s.SlowHits.Load() != 1 {
		t.Errorf("counters = %d/%d, want 1/1", s.Sampled.Load(), s.SlowHits.Load())
	}
	if slowSeen == nil || slowSeen.ID != 7 {
		t.Errorf("OnSlow saw %+v, want id 7", slowSeen)
	}
	if s.Ring.Len() != 1 || s.Slow.Len() != 1 {
		t.Errorf("rings hold %d/%d, want 1/1", s.Ring.Len(), s.Slow.Len())
	}
}

func TestNewTraceID(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 {
			t.Fatal("zero trace id")
		}
		if seen[id] {
			t.Fatalf("duplicate trace id %x after %d draws", id, i)
		}
		seen[id] = true
	}
}

func TestTraceIDFormat(t *testing.T) {
	if got := TraceID(0); got != "0000000000000000" {
		t.Errorf("TraceID(0) = %q", got)
	}
	if got := TraceID(0xdeadbeef12345678); got != "deadbeef12345678" {
		t.Errorf("TraceID = %q, want deadbeef12345678", got)
	}
	if got := TraceID(0xf); got != "000000000000000f" {
		t.Errorf("TraceID(0xf) = %q (must be fixed-width)", got)
	}
}

func TestWriteTracesJSON(t *testing.T) {
	ring := NewTraceRing(4)
	var tally SpanTally
	tally.ID = 0xabc
	tally.Add(StageProbe, HopSelf, 123)
	tally.Add(StageNet, 2, 456)
	var tr Trace
	tr.Fill(&tally, 1, 64, 600)
	ring.Put(&tr)

	reg := NewRegistry()
	var h Histogram
	reg.Histogram("trace_test_latency_ns", "Test latency.", &h)
	h.ObserveExemplar(1000, 0xabc)

	var sb strings.Builder
	if err := WriteTracesJSON(&sb, ring, reg); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Pairs   int64  `json:"pairs"`
			TotalNs int64  `json:"total_ns"`
			Stages  []struct {
				Stage string `json:"stage"`
				Hop   string `json:"hop"`
				Ns    int64  `json:"ns"`
			} `json:"stages"`
		} `json:"traces"`
		Exemplars []struct {
			Metric  string `json:"metric"`
			TraceID string `json:"trace_id"`
		} `json:"exemplars"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Traces) != 1 {
		t.Fatalf("%d traces, want 1", len(doc.Traces))
	}
	got := doc.Traces[0]
	if got.TraceID != TraceID(0xabc) || got.Pairs != 64 || got.TotalNs != 600 {
		t.Errorf("trace = %+v", got)
	}
	if len(got.Stages) != 2 || got.Stages[0].Stage != "probe" || got.Stages[0].Hop != "local" ||
		got.Stages[1].Stage != "net" || got.Stages[1].Hop != "shard2" {
		t.Errorf("stages = %+v", got.Stages)
	}
	if len(doc.Exemplars) != 1 || doc.Exemplars[0].Metric != "trace_test_latency_ns" ||
		doc.Exemplars[0].TraceID != TraceID(0xabc) {
		t.Errorf("exemplars = %+v", doc.Exemplars)
	}

	// A nil ring and nil registry still render a valid empty document.
	sb.Reset()
	if err := WriteTracesJSON(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"traces": []`) {
		t.Errorf("empty doc = %s", sb.String())
	}
}

func TestHistogramExemplar(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(5, 0x1) // bucket for 5ns
	h.ObserveExemplar(5, 0x2) // same bucket: last id wins
	h.Observe(5)              // plain observe must not clear it
	h.ObserveExemplar(1<<30, 0x3)
	if h.Count() != 4 {
		t.Fatalf("Count = %d, want 4", h.Count())
	}
	i := bucketIndex(5)
	if got := h.Exemplar(i); got != 0x2 {
		t.Errorf("Exemplar(bucket of 5) = %#x, want 0x2", got)
	}
	if got := h.Exemplar(bucketIndex(1 << 30)); got != 0x3 {
		t.Errorf("Exemplar(bucket of 2^30) = %#x, want 0x3", got)
	}
	if got := h.Exemplar(-1); got != 0 {
		t.Errorf("Exemplar(-1) = %#x, want 0", got)
	}
	if got := h.Exemplar(HistogramBuckets); got != 0 {
		t.Errorf("Exemplar(out of range) = %#x, want 0", got)
	}
	// ObserveExemplar with id 0 must not erase the stored exemplar.
	h.ObserveExemplar(5, 0)
	if got := h.Exemplar(i); got != 0x2 {
		t.Errorf("Exemplar after id-0 observe = %#x, want 0x2", got)
	}
}

func TestRegistryExemplars(t *testing.T) {
	reg := NewRegistry()
	var plain, traced Histogram
	var c Counter
	reg.Counter("reg_ex_total", "c.", &c)
	reg.Histogram("reg_ex_plain_ns", "plain.", &plain)
	reg.Histogram("reg_ex_traced_ns", "traced.", &traced, "shard", "0")
	plain.Observe(10)
	traced.ObserveExemplar(10, 0xbeef)
	refs := reg.Exemplars()
	if len(refs) != 1 {
		t.Fatalf("%d exemplar refs, want 1: %+v", len(refs), refs)
	}
	ref := refs[0]
	if ref.Name != "reg_ex_traced_ns" || ref.TraceID != 0xbeef {
		t.Errorf("ref = %+v", ref)
	}
	if ref.Labels == "" || !strings.Contains(ref.Labels, "shard") {
		t.Errorf("ref labels = %q, want shard label", ref.Labels)
	}
	if ref.BucketLe < 10 {
		t.Errorf("bucket upper bound %d < observed 10", ref.BucketLe)
	}
	// The Prometheus text exposition is unchanged by exemplars.
	if strings.Contains(reg.Expose(), "exemplar") {
		t.Error("text exposition leaks exemplars")
	}
}

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg, "scheme", "fatthin", "layout", "degree")
	out := reg.Expose()
	if !strings.Contains(out, "plabel_build_info{") {
		t.Fatalf("missing plabel_build_info:\n%s", out)
	}
	for _, want := range []string{`revision="`, `goversion="go`, `scheme="fatthin"`, `layout="degree"`} {
		if !strings.Contains(out, want) {
			t.Errorf("build info missing %s:\n%s", want, out)
		}
	}
	var line string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "plabel_build_info{") {
			line = l
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build info gauge = %q, want value 1", line)
	}
}
