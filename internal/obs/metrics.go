// Package obs is the repo's dependency-free observability core: lock-free
// counters, gauges and fixed-bucket latency histograms, a Registry that
// renders the Prometheus text exposition format, a process/runtime metrics
// collector, and an HTTP admin server mounting /metrics, /healthz, /readyz
// and net/http/pprof.
//
// The design constraint that shapes everything here is the serving tier's
// zero-allocation guarantee: instrumenting a hot path must not cost an
// allocation or a lock. Every metric value is therefore a plain struct of
// atomics whose zero value is ready to use — components embed them directly
// and update them unconditionally; a Registry only attaches names at startup
// and reads the same atomics at scrape time. Histogram.Observe is a single
// atomic add on a power-of-two bucket plus one on the running sum: no
// buckets slice, no mutex, no time.Time boxing.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent callers.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (n must be >= 0 for the rendered series to
// stay monotone; this is not enforced on the hot path).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to use;
// all methods are safe for concurrent callers.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistogramBuckets is the fixed bucket count of every Histogram. Bucket i
// (i < HistogramBuckets-1) has upper bound 2^i; the last bucket is the +Inf
// overflow. With 40 buckets the finite range covers 1ns .. ~4.6 minutes when
// observing nanoseconds, which spans every latency this repo measures.
const HistogramBuckets = 40

// histMaxFinite is the upper bound of the last finite bucket.
const histMaxFinite = int64(1) << (HistogramBuckets - 2)

// Histogram is a lock-free latency histogram with fixed power-of-two bucket
// bounds. Values are dimensionless int64s; by convention this repo observes
// durations in nanoseconds. The zero value is ready to use; Observe is one
// atomic add on the bucket counter plus one on the running sum — no locks,
// no allocation, safe for any number of concurrent observers.
type Histogram struct {
	buckets [HistogramBuckets]atomic.Int64
	sum     atomic.Int64
	// exemplars[i] holds the trace id most recently observed into bucket i
	// (0: none). Written only by ObserveExemplar, so histograms that never
	// see traced traffic pay nothing beyond the struct space; rendered by
	// /debug/traces, never by the Prometheus text exposition.
	exemplars [HistogramBuckets]atomic.Uint64
}

// bucketIndex maps a value to its bucket: the smallest i with v <= 2^i,
// capped at the overflow bucket. Branch-free except for the two clamps.
func bucketIndex(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= HistogramBuckets-1 {
		return HistogramBuckets - 1
	}
	return i
}

// BucketBound returns bucket i's upper bound (2^i), or -1 for the +Inf
// overflow bucket.
func BucketBound(i int) int64 {
	if i >= HistogramBuckets-1 {
		return -1
	}
	return int64(1) << uint(i)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// ObserveExemplar records one value and stamps its bucket's exemplar with
// traceID, linking the latency bucket to a concrete trace: one extra atomic
// store over Observe, still lock-free and allocation-free.
func (h *Histogram) ObserveExemplar(v int64, traceID uint64) {
	i := bucketIndex(v)
	h.buckets[i].Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[i].Store(traceID)
	}
}

// Exemplar returns the trace id last observed into bucket i, or 0 if none.
func (h *Histogram) Exemplar(i int) uint64 {
	if i < 0 || i >= HistogramBuckets {
		return 0
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations (the sum over all buckets). Taken
// while observations are in flight it is consistent per bucket, not across
// buckets — fine for monitoring, which only ever sees a histogram in motion.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot loads all buckets once, so a render or quantile walk works over
// one consistent-enough view instead of re-loading atomics.
func (h *Histogram) snapshot() (b [HistogramBuckets]int64, total int64) {
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		total += b[i]
	}
	return b, total
}

// Quantile extracts the q-th quantile (0 <= q <= 1) from the bucket counts,
// linearly interpolating inside the bucket that straddles the target rank.
// Observations in the +Inf bucket are attributed to the last finite bound,
// so an overflow-heavy histogram reports a (clearly saturated) 2^38 rather
// than fabricating larger values. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	b, total := h.snapshot()
	return quantileFrom(&b, total, q)
}

// Quantiles extracts several quantiles from one snapshot, so the returned
// values are mutually consistent (and monotone for sorted qs) even while
// observations are being recorded concurrently — calling Quantile repeatedly
// instead re-snapshots each time and can report p99 < p50 across the calls.
func (h *Histogram) Quantiles(qs ...float64) []int64 {
	b, total := h.snapshot()
	out := make([]int64, len(qs))
	for i, q := range qs {
		out[i] = quantileFrom(&b, total, q)
	}
	return out
}

// quantileFrom is the quantile walk over one pre-taken snapshot.
func quantileFrom(b *[HistogramBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, n := range b {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lower := int64(0)
			if i > 0 {
				lower = int64(1) << uint(i-1)
			}
			upper := BucketBound(i)
			if upper < 0 { // +Inf bucket: report the last finite bound
				return histMaxFinite
			}
			frac := 0.0
			if n > 0 {
				frac = (target - cum) / float64(n)
			}
			return lower + int64(frac*float64(upper-lower))
		}
		cum = next
	}
	return histMaxFinite
}

// QuantileDuration is Quantile for nanosecond-valued histograms.
func (h *Histogram) QuantileDuration(q float64) time.Duration {
	return time.Duration(h.Quantile(q))
}
