package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the Prometheus exposition type of a metric family.
type MetricType int

const (
	TypeCounter MetricType = iota
	TypeGauge
	TypeHistogram
)

func (t MetricType) String() string {
	switch t {
	case TypeCounter:
		return "counter"
	case TypeGauge:
		return "gauge"
	case TypeHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance under a family. Exactly one of the value
// fields is set.
type series struct {
	labels  string // pre-rendered `{k="v",...}`, or "" for the bare series
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64
}

// family is all series sharing one metric name.
type family struct {
	name, help string
	typ        MetricType
	series     []series
}

// Registry maps metric values to exposition names and renders them in the
// Prometheus text format. Registration happens at startup and may allocate;
// scraping reads the registered atomics directly. The registry never touches
// a hot path: components own their metric structs and a Registry is only the
// naming and rendering layer over them.
//
// Families and series render in registration order, which makes the output
// deterministic (golden-testable) without sorting at scrape time.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
	hooks  []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// OnGather registers fn to run at the start of every WritePrometheus call,
// before any value is read — the hook point for collectors that snapshot
// expensive state (e.g. runtime.ReadMemStats) once per scrape. Hooks and
// value funcs run under the registry lock, so they never race a concurrent
// scrape.
func (r *Registry) OnGather(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Counter registers c under name. labels are alternating key/value pairs
// bound as constant labels of this series. Registering a second series under
// the same name requires matching help text; a duplicate label signature or
// a name reused with a different type panics — misregistration is a startup
// programming error, not a runtime condition.
func (r *Registry) Counter(name, help string, c *Counter, labels ...string) {
	r.register(name, help, TypeCounter, series{labels: labelString(labels), counter: c})
}

// CounterFunc registers a counter series computed by fn at scrape time —
// the bridge for components that already keep their own atomics (e.g.
// peernet.Traffic). fn must be monotone for the series to behave as a
// Prometheus counter.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...string) {
	r.register(name, help, TypeCounter, series{labels: labelString(labels), fn: fn})
}

// Gauge registers g under name.
func (r *Registry) Gauge(name, help string, g *Gauge, labels ...string) {
	r.register(name, help, TypeGauge, series{labels: labelString(labels), gauge: g})
}

// GaugeFunc registers a gauge series computed by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...string) {
	r.register(name, help, TypeGauge, series{labels: labelString(labels), fn: fn})
}

// Histogram registers h under name.
func (r *Registry) Histogram(name, help string, h *Histogram, labels ...string) {
	r.register(name, help, TypeHistogram, series{labels: labelString(labels), hist: h})
}

func (r *Registry) register(name, help string, typ MetricType, s series) {
	if !validMetricName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else {
		if f.typ != typ {
			panic("obs: metric " + name + " reregistered as " + typ.String() + ", was " + f.typ.String())
		}
		if f.help != help {
			panic("obs: metric " + name + " reregistered with different help text")
		}
		for _, prev := range f.series {
			if prev.labels == s.labels {
				panic("obs: duplicate series " + name + s.labels)
			}
		}
	}
	f.series = append(f.series, s)
}

// validMetricName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// labelString renders alternating key/value pairs as `{k="v",...}`, escaping
// values per the exposition format. An empty pair list renders as "".
func labelString(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	if !strings.ContainsAny(h, "\\\n") {
		return h
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// WritePrometheus renders every registered family in the text exposition
// format (version 0.0.4). Values are read from the live atomics: a scrape
// during traffic sees each counter's instantaneous value, consistent per
// counter rather than across counters, which is the usual Prometheus
// contract.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, hook := range r.hooks {
		hook()
	}
	var b strings.Builder
	for _, f := range r.fams {
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ.String())
		b.WriteByte('\n')
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(&b, f.name, s.labels, s.hist)
				continue
			}
			var v int64
			switch {
			case s.counter != nil:
				v = s.counter.Load()
			case s.gauge != nil:
				v = s.gauge.Load()
			default:
				v = s.fn()
			}
			b.WriteString(f.name)
			b.WriteString(s.labels)
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(v, 10))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative le-buckets, then
// _sum and _count. le merges into the series' constant labels.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	buckets, total := h.snapshot()
	var cum int64
	for i, n := range buckets {
		cum += n
		// Empty finite buckets below the maximum are skipped to keep the
		// output compact; cumulative semantics make the elided points
		// recoverable, and the +Inf bucket always renders.
		if n == 0 && i < HistogramBuckets-1 {
			continue
		}
		bound := "+Inf"
		if ub := BucketBound(i); ub >= 0 {
			bound = strconv.FormatInt(ub, 10)
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		writeMergedLabels(b, labels, bound)
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(h.Sum(), 10))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(total, 10))
	b.WriteByte('\n')
}

// writeMergedLabels appends labels with an le pair merged in.
func writeMergedLabels(b *strings.Builder, labels, le string) {
	if labels == "" {
		b.WriteString(`{le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
		return
	}
	b.WriteString(labels[:len(labels)-1]) // drop the closing brace
	b.WriteString(`,le="`)
	b.WriteString(le)
	b.WriteString(`"}`)
}

// ExemplarRef links one histogram bucket to the trace id last observed into
// it, as collected by Registry.Exemplars.
type ExemplarRef struct {
	Name     string // metric family name
	Labels   string // pre-rendered series labels, "" for the bare series
	BucketLe int64  // bucket upper bound (ns); -1 for the +Inf bucket
	TraceID  uint64
}

// Exemplars walks every registered histogram and returns the non-empty
// bucket exemplars — the join table between the latency histograms on
// /metrics and the traces on /debug/traces. Exemplars never appear in the
// Prometheus text output, which stays byte-stable whether or not tracing
// runs.
func (r *Registry) Exemplars() []ExemplarRef {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []ExemplarRef
	for _, f := range r.fams {
		for _, s := range f.series {
			if s.hist == nil {
				continue
			}
			for i := 0; i < HistogramBuckets; i++ {
				id := s.hist.Exemplar(i)
				if id == 0 {
					continue
				}
				out = append(out, ExemplarRef{
					Name:     f.name,
					Labels:   s.labels,
					BucketLe: BucketBound(i),
					TraceID:  id,
				})
			}
		}
	}
	return out
}

// Expose is a convenience for tests and CLIs: the full exposition as a
// string.
func (r *Registry) Expose() string {
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		return fmt.Sprintf("obs: render failed: %v", err)
	}
	return b.String()
}
