package obs

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo registers the plabel_build_info gauge: a constant-1
// series whose labels carry the build identity (VCS revision, Go version)
// plus any deployment facts the daemon passes in (scheme and layout of the
// loaded store, fleet role). The value is always 1 — the Prometheus idiom
// for "info" metrics, joinable against every other series by instance.
//
// extra is an alternating key/value list appended after the built-in
// revision/goversion labels.
func RegisterBuildInfo(reg *Registry, extra ...string) {
	labels := append([]string{
		"revision", buildRevision(),
		"goversion", runtime.Version(),
	}, extra...)
	reg.GaugeFunc("plabel_build_info",
		"Build identity of this binary (value is always 1).",
		func() int64 { return 1 }, labels...)
}

// buildRevision extracts the VCS revision stamped into the binary, "unknown"
// when built outside a checkout (or with -buildvcs=false).
func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "unknown", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty && rev != "unknown" {
		rev += "+dirty"
	}
	return rev
}
