package obs

import (
	"runtime"
	"time"
)

// RegisterRuntimeMetrics registers the go_* process/runtime family on reg:
// goroutine count, heap occupancy, GC cycle and pause accounting. MemStats is
// snapshotted once per scrape via a gather hook (ReadMemStats stops the
// world briefly, so one snapshot serves every series), and the value funcs
// read the shared snapshot under the registry lock.
func RegisterRuntimeMetrics(reg *Registry) {
	var (
		ms    runtime.MemStats
		start = time.Now()
	)
	reg.OnGather(func() { runtime.ReadMemStats(&ms) })
	reg.GaugeFunc("go_goroutines", "Number of live goroutines.",
		func() int64 { return int64(runtime.NumGoroutine()) })
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() int64 { return int64(ms.HeapAlloc) })
	reg.GaugeFunc("go_heap_sys_bytes", "Bytes of heap memory obtained from the OS.",
		func() int64 { return int64(ms.HeapSys) })
	reg.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		func() int64 { return int64(ms.HeapObjects) })
	reg.GaugeFunc("go_next_gc_bytes", "Heap size at which the next GC cycle triggers.",
		func() int64 { return int64(ms.NextGC) })
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		func() int64 { return int64(ms.NumGC) })
	reg.CounterFunc("go_gc_pause_ns_total", "Cumulative nanoseconds of GC stop-the-world pauses.",
		func() int64 { return int64(ms.PauseTotalNs) })
	reg.GaugeFunc("go_gc_last_pause_ns", "Duration of the most recent GC pause in nanoseconds.",
		func() int64 {
			if ms.NumGC == 0 {
				return 0
			}
			return int64(ms.PauseNs[(ms.NumGC+255)%256])
		})
	reg.CounterFunc("process_uptime_seconds_total", "Seconds since the process registered its metrics.",
		func() int64 { return int64(time.Since(start).Seconds()) })
	reg.GaugeFunc("go_gomaxprocs", "Value of GOMAXPROCS.",
		func() int64 { return int64(runtime.GOMAXPROCS(0)) })
}
