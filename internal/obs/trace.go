package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Tracing: per-request latency attribution across the serving fleet.
//
// A traced request carries a 64-bit trace id through every hop
// (client → router → shard server); each hop measures its own stages into a
// stack-local SpanTally and echoes them back in the response frame, so the
// originator reconstructs a full timeline without any out-of-band collector.
// Completed traces land in a lossy TraceRing (sampled) and a second ring
// for slow frames (threshold-triggered even when unsampled), both rendered
// as JSON by the admin endpoints /debug/traces and /debug/slowlog.
//
// The stage vocabulary is fixed so every hop agrees on meaning:
//
//	read     request frame read off the socket (header seen → payload read)
//	queue    time the frame sat behind earlier frames of a pipelined burst
//	probe    engine probe: decode pairs, query the label arena, encode answer
//	scatter  router-side partition of a batch into per-shard sub-batches
//	gather   router-side merge of per-shard answers back into request order
//	upstream router-side fan-out window (first sub-batch sent → last answered)
//	net      residual wire+flush time a parent hop attributes to its child
//	           (measured RTT minus the child's self-reported stage sum)
//	encode   client-side request encoding into the wire buffer
//	flush    client-side socket write+flush of the request
//
// Hop labels say whose stage an entry is. A hop always records its own
// stages as HopSelf; when a response's trace block is merged into the
// caller's tally, the callee's HopSelf entries are relabeled HopPeer ("the
// hop I talked to"). The router further relabels HopPeer to the concrete
// shard index when merging per-shard answers, so at the originator the
// labels read: HopSelf = my client stages, HopPeer = the hop I dialed
// (router or server), 0..250 = shards behind a router.
const (
	StageRead     uint8 = 1
	StageQueue    uint8 = 2
	StageProbe    uint8 = 3
	StageScatter  uint8 = 4
	StageGather   uint8 = 5
	StageUpstream uint8 = 6
	StageNet      uint8 = 7
	StageEncode   uint8 = 8
	StageFlush    uint8 = 9
)

// HopSelf labels a stage recorded by the hop itself; HopPeer labels stages
// reported by the immediate downstream hop. Values below HopPeer are shard
// indices assigned by a router when it merges per-shard responses.
const (
	HopSelf uint8 = 0xff
	HopPeer uint8 = 0xfd
)

// StageName returns the wire-stable lowercase name of a stage id, or "?" for
// an unknown id (a newer peer may report stages this build doesn't know).
func StageName(s uint8) string {
	switch s {
	case StageRead:
		return "read"
	case StageQueue:
		return "queue"
	case StageProbe:
		return "probe"
	case StageScatter:
		return "scatter"
	case StageGather:
		return "gather"
	case StageUpstream:
		return "upstream"
	case StageNet:
		return "net"
	case StageEncode:
		return "encode"
	case StageFlush:
		return "flush"
	}
	return "?"
}

// HopName renders a hop label for humans: "local" for the originator's own
// stages, "peer" for the hop it dialed, "shard<i>" for router-assigned shard
// indices.
func HopName(h uint8) string {
	switch h {
	case HopSelf:
		return "local"
	case HopPeer:
		return "peer"
	}
	return "shard" + itoa(int(h))
}

// itoa is a tiny strconv.Itoa for small non-negative ints, keeping the render
// path free of imports it doesn't need.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 && i > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TraceMaxStages bounds the stage entries a single trace can hold: enough
// for a router fan-out over a large fleet (3 own stages + 3 client stages +
// ~4 entries per shard) while keeping Trace embeddable in fixed-size ring
// slots. Overflow drops entries, never allocates.
const TraceMaxStages = 64

// TraceStage is one attributed duration: which stage, on which hop, how long.
type TraceStage struct {
	Stage uint8
	Hop   uint8
	Ns    int64
}

// SpanTally is the stack-local stage accumulator the hot paths write into —
// the tracing analogue of core.QueryTally. The zero value is an empty tally;
// Add is two stores and an increment, no atomics, no allocation. A tally is
// only turned into a heap Trace when it is deposited into a ring (sampled or
// slow), which is off the common path by construction.
type SpanTally struct {
	ID uint64 // propagated trace id; 0 means locally originated, unsampled
	n  int
	st [TraceMaxStages]TraceStage
}

// Reset clears the tally for reuse (the id is cleared too).
func (t *SpanTally) Reset() { t.ID, t.n = 0, 0 }

// Add records one stage duration. Entries beyond TraceMaxStages are dropped.
func (t *SpanTally) Add(stage, hop uint8, ns int64) {
	if t.n >= TraceMaxStages {
		return
	}
	t.st[t.n] = TraceStage{Stage: stage, Hop: hop, Ns: ns}
	t.n++
}

// Len returns the number of recorded stages.
func (t *SpanTally) Len() int { return t.n }

// Stages returns the recorded entries as a slice over the tally's own array
// (valid until the next Reset/Add).
func (t *SpanTally) Stages() []TraceStage { return t.st[:t.n] }

// SumHop returns the total nanoseconds recorded against one hop label.
func (t *SpanTally) SumHop(hop uint8) int64 {
	var s int64
	for i := 0; i < t.n; i++ {
		if t.st[i].Hop == hop {
			s += t.st[i].Ns
		}
	}
	return s
}

// MergePeer appends stages into t, relabeling the source's HopSelf entries
// to hop (HopPeer at a client merge, a shard index at a router merge) and
// keeping other labels as they are — already-assigned shard indices pass
// through unchanged.
func (t *SpanTally) MergePeer(stages []TraceStage, hop uint8) {
	for _, s := range stages {
		h := s.Hop
		if h == HopSelf {
			h = hop
		}
		t.Add(s.Stage, h, s.Ns)
	}
}

// Trace is a completed, self-contained trace record as stored in a ring
// slot: fixed size, no pointers, safe to copy with one memmove.
type Trace struct {
	ID      uint64
	Unix    int64 // completion time, seconds since epoch
	Op      uint8 // wire op the frame carried
	Pairs   int64 // pairs answered by the frame
	TotalNs int64 // end-to-end time at the hop that deposited the trace
	NStages int32
	Stages  [TraceMaxStages]TraceStage
}

// Fill populates tr from a tally plus frame facts. It performs no allocation.
func (tr *Trace) Fill(t *SpanTally, op uint8, pairs int, totalNs int64) {
	tr.ID = t.ID
	tr.Unix = time.Now().Unix()
	tr.Op = op
	tr.Pairs = int64(pairs)
	tr.TotalNs = totalNs
	tr.NStages = int32(t.n)
	copy(tr.Stages[:], t.st[:t.n])
}

// traceSlot pairs a Trace with a short-held per-slot mutex: a writer holds it
// only for the memmove of one Trace, and Snapshot TryLocks so a reader never
// blocks a writer beyond that copy — a slot mid-write is simply skipped.
type traceSlot struct {
	mu   sync.Mutex
	full bool
	tr   Trace
}

// TraceRing is a fixed-size ring of completed traces: writers claim slots
// round-robin with one atomic add and copy in under the slot's mutex, held
// only for the copy. The ring is lossy by design — it answers "what do recent
// traces look like", not "every trace" — which is what keeps Put constant-
// time and effectively uncontended for the frame loop (writers rotate slots;
// readers skip rather than wait).
type TraceRing struct {
	head  atomic.Uint64
	slots []traceSlot
}

// NewTraceRing builds a ring with capacity n (minimum 1).
func NewTraceRing(n int) *TraceRing {
	if n < 1 {
		n = 1
	}
	return &TraceRing{slots: make([]traceSlot, n)}
}

// Put stores a copy of tr in the next slot.
func (r *TraceRing) Put(tr *Trace) {
	idx := (r.head.Add(1) - 1) % uint64(len(r.slots))
	s := &r.slots[idx]
	s.mu.Lock()
	s.tr = *tr
	s.full = true
	s.mu.Unlock()
}

// Len returns the number of published slots (capped at capacity).
func (r *TraceRing) Len() int {
	h := r.head.Load()
	if h > uint64(len(r.slots)) {
		return len(r.slots)
	}
	return int(h)
}

// Snapshot appends consistent copies of the published traces to dst, newest
// first, skipping slots that are being written. The result length may be
// less than Len under concurrent writes.
func (r *TraceRing) Snapshot(dst []Trace) []Trace {
	h := r.head.Load()
	n := uint64(len(r.slots))
	count := h
	if count > n {
		count = n
	}
	for i := uint64(0); i < count; i++ {
		s := &r.slots[(h-1-i)%n]
		if !s.mu.TryLock() {
			continue // mid-write: skip rather than stall the writer's frame
		}
		if s.full {
			dst = append(dst, s.tr)
		}
		s.mu.Unlock()
	}
	return dst
}

// TraceSink is a hop's trace collection point: where sampled traces and
// slow frames are deposited, and the sampling/threshold policy that decides
// when. A nil *TraceSink disables collection entirely (the serving loops
// nil-check once per frame). All fields are set before serving starts and
// read-only afterwards, except the atomics.
type TraceSink struct {
	Ring *TraceRing // sampled traces (nil: sampling only counts)
	Slow *TraceRing // slow frames (nil: slowlog disabled)

	// SampleEvery enables self-sampling: every Nth eligible frame is traced
	// even if the caller didn't request it. 0 disables self-sampling
	// (explicitly traced frames are still deposited).
	SampleEvery int64
	// SlowNs, when > 0, captures any frame whose total time exceeds it into
	// Slow — sampled or not. This is the always-on flight recorder.
	SlowNs int64
	// OnSlow, when non-nil, is called synchronously with each slow-frame
	// trace after it is deposited (the hook daemons use to log slow frames;
	// it must be cheap or rate-limited by the callee).
	OnSlow func(*Trace)

	Sampled  Counter // traces deposited into Ring
	SlowHits Counter // traces deposited into Slow

	ctr atomic.Int64
}

// SampleNow reports whether self-sampling selects the current frame: true
// for every SampleEvery-th call. Never true when SampleEvery <= 0.
func (s *TraceSink) SampleNow() bool {
	if s == nil || s.SampleEvery <= 0 {
		return false
	}
	return s.ctr.Add(1)%s.SampleEvery == 0
}

// SlowThreshold returns the slow-frame threshold in nanoseconds (0 when the
// sink is nil or the slowlog disabled), so frame loops can test cheaply.
func (s *TraceSink) SlowThreshold() int64 {
	if s == nil {
		return 0
	}
	return s.SlowNs
}

// Deposit stores a completed sampled trace.
func (s *TraceSink) Deposit(tr *Trace) {
	if s == nil || s.Ring == nil {
		return
	}
	s.Ring.Put(tr)
	s.Sampled.Inc()
}

// DepositSlow stores a slow-frame trace and fires OnSlow.
func (s *TraceSink) DepositSlow(tr *Trace) {
	if s == nil || s.Slow == nil {
		return
	}
	s.Slow.Put(tr)
	s.SlowHits.Inc()
	if s.OnSlow != nil {
		s.OnSlow(tr)
	}
}

// Register exposes the sink's capture counters on reg under the trace_*
// family names.
func (s *TraceSink) Register(reg *Registry) {
	reg.Counter("trace_sampled_total", "Traces captured into the sampled ring.", &s.Sampled)
	reg.Counter("trace_slow_frames_total", "Frames captured into the slow-frame log.", &s.SlowHits)
}

// traceIDState seeds the process-local trace id generator with address-space
// and time entropy; NewTraceID steps it with splitmix64, so ids are unique
// within a process and collide across processes only by 64-bit accident.
var traceIDState atomic.Uint64

func init() {
	seed := uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32
	traceIDState.Store(seed | 1)
}

// NewTraceID returns a fresh nonzero 64-bit trace id.
func NewTraceID() uint64 {
	for {
		x := traceIDState.Add(0x9e3779b97f4a7c15)
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		if x != 0 {
			return x
		}
	}
}

// traceJSON is the wire shape of one trace in the /debug/traces and
// /debug/slowlog JSON documents.
type traceJSON struct {
	ID      string           `json:"trace_id"`
	Unix    int64            `json:"unix"`
	Op      uint8            `json:"op"`
	Pairs   int64            `json:"pairs"`
	TotalNs int64            `json:"total_ns"`
	Stages  []traceStageJSON `json:"stages"`
}

type traceStageJSON struct {
	Stage string `json:"stage"`
	Hop   string `json:"hop"`
	Ns    int64  `json:"ns"`
}

// TraceID formats a trace id the way every surface renders it: fixed-width
// lowercase hex, the join key between /debug/traces, the slowlog, histogram
// exemplars and slog trace_id attributes.
func TraceID(id uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[id&0xf]
		id >>= 4
	}
	return string(b[:])
}

// exemplarJSON links one histogram latency bucket to the trace id last
// observed in it.
type exemplarJSON struct {
	Metric   string `json:"metric"`
	Labels   string `json:"labels,omitempty"`
	BucketLe int64  `json:"bucket_le"` // upper bound ns; -1 for +Inf
	TraceID  string `json:"trace_id"`
}

// tracesDoc is the top-level /debug/traces JSON document.
type tracesDoc struct {
	Traces    []traceJSON    `json:"traces"`
	Exemplars []exemplarJSON `json:"exemplars,omitempty"`
}

// WriteTracesJSON renders ring's snapshot (newest first) as a JSON document,
// including histogram exemplars gathered from reg when reg is non-nil.
func WriteTracesJSON(w io.Writer, ring *TraceRing, reg *Registry) error {
	doc := tracesDoc{Traces: []traceJSON{}}
	if ring != nil {
		for _, tr := range ring.Snapshot(nil) {
			tj := traceJSON{
				ID:      TraceID(tr.ID),
				Unix:    tr.Unix,
				Op:      tr.Op,
				Pairs:   tr.Pairs,
				TotalNs: tr.TotalNs,
				Stages:  make([]traceStageJSON, 0, tr.NStages),
			}
			for i := int32(0); i < tr.NStages; i++ {
				s := tr.Stages[i]
				tj.Stages = append(tj.Stages, traceStageJSON{
					Stage: StageName(s.Stage),
					Hop:   HopName(s.Hop),
					Ns:    s.Ns,
				})
			}
			doc.Traces = append(doc.Traces, tj)
		}
	}
	if reg != nil {
		for _, ex := range reg.Exemplars() {
			doc.Exemplars = append(doc.Exemplars, exemplarJSON{
				Metric:   ex.Name,
				Labels:   ex.Labels,
				BucketLe: ex.BucketLe,
				TraceID:  TraceID(ex.TraceID),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&doc)
}
