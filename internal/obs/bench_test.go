package obs

import (
	"io"
	"testing"
)

// The obs primitives sit on zero-allocation hot paths (engine probes,
// adjserve frame loop), so every benchmark here reports allocs: the bar is
// 0 allocs/op for Observe/Add/Set and a handful of nanoseconds each.

func BenchmarkObsCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkObsGaugeSet(b *testing.B) {
	var g Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkObsHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i & 0xFFFF))
	}
}

func BenchmarkObsHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Observe(v & 0xFFFF)
		}
	})
}

func BenchmarkObsHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := int64(0); i < 1<<16; i++ {
		h.Observe(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Quantile(0.99)
	}
}

// BenchmarkObsRegistryRender measures a full scrape over a realistic family
// count (what /metrics costs the admin endpoint per request).
func BenchmarkObsRegistryRender(b *testing.B) {
	reg := NewRegistry()
	counters := make([]Counter, 24)
	for i := range counters {
		counters[i].Add(int64(i) * 1000)
		reg.Counter("bench_family_total", "Render benchmark series.", &counters[i],
			"shard", string(rune('a'+i)))
	}
	var h Histogram
	for i := int64(0); i < 4096; i++ {
		h.Observe(i)
	}
	reg.Histogram("bench_latency_ns", "Render benchmark histogram.", &h)
	RegisterRuntimeMetrics(reg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
