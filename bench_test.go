package repro

import (
	"bytes"
	"io"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/hashing"
	"repro/internal/powerlaw"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/distance"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

// ---------------------------------------------------------------------------
// Experiment benchmarks: one per table/figure of the evaluation. Each runs
// the same code path as `plbench -experiment <ID> -quick`; run plbench for
// the rendered tables and see EXPERIMENTS.md for paper-vs-measured numbers.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, run func(experiments.Config) ([]*experiments.Table, error)) {
	b.Helper()
	cfg := experiments.Config{Quick: true, Seed: 20160711}
	for i := 0; i < b.N; i++ {
		tables, err := run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatal("experiment produced no rows")
		}
	}
}

func BenchmarkE1LabelSizeVsN(b *testing.B)     { benchExperiment(b, experiments.E1LabelSizeVsN) }
func BenchmarkE2ThresholdSweep(b *testing.B)   { benchExperiment(b, experiments.E2ThresholdSweep) }
func BenchmarkE3AlphaSweep(b *testing.B)       { benchExperiment(b, experiments.E3AlphaSweep) }
func BenchmarkE4LowerBound(b *testing.B)       { benchExperiment(b, experiments.E4LowerBound) }
func BenchmarkE5DistanceLabels(b *testing.B)   { benchExperiment(b, experiments.E5DistanceLabels) }
func BenchmarkE6BAForest(b *testing.B)         { benchExperiment(b, experiments.E6BAForest) }
func BenchmarkE7OneQuery(b *testing.B)         { benchExperiment(b, experiments.E7OneQuery) }
func BenchmarkE8DecodeThroughput(b *testing.B) { benchExperiment(b, experiments.E8DecodeThroughput) }
func BenchmarkE9ThresholdAblation(b *testing.B) {
	benchExperiment(b, experiments.E9ThresholdAblation)
}
func BenchmarkE10FatEncoding(b *testing.B) { benchExperiment(b, experiments.E10FatEncoding) }
func BenchmarkE11DynamicRelabels(b *testing.B) {
	benchExperiment(b, experiments.E11DynamicRelabels)
}
func BenchmarkE12IncompleteKnowledge(b *testing.B) {
	benchExperiment(b, experiments.E12IncompleteKnowledge)
}
func BenchmarkE13UniversalGraphs(b *testing.B) {
	benchExperiment(b, experiments.E13UniversalGraphs)
}
func BenchmarkE14ExpectedLabelSize(b *testing.B) {
	benchExperiment(b, experiments.E14ExpectedLabelSize)
}
func BenchmarkE15CompressedThin(b *testing.B) {
	benchExperiment(b, experiments.E15CompressedThin)
}
func BenchmarkE16CommunicationCost(b *testing.B) {
	benchExperiment(b, experiments.E16CommunicationCost)
}
func BenchmarkE17RoutingStretch(b *testing.B) {
	benchExperiment(b, experiments.E17RoutingStretch)
}
func BenchmarkE18PriceOfLocality(b *testing.B) {
	benchExperiment(b, experiments.E18PriceOfLocality)
}
func BenchmarkE19GenerativeModels(b *testing.B) {
	benchExperiment(b, experiments.E19GenerativeModels)
}
func BenchmarkE20EncodeScalability(b *testing.B) {
	benchExperiment(b, experiments.E20EncodeScalability)
}
func BenchmarkE21AdversarialH(b *testing.B) {
	benchExperiment(b, experiments.E21AdversarialH)
}
func BenchmarkE24ObservabilityOverhead(b *testing.B) {
	benchExperiment(b, experiments.E24ObservabilityOverhead)
}

func BenchmarkE25SkewLayout(b *testing.B) {
	benchExperiment(b, experiments.E25SkewLayout)
}

func BenchmarkE27DistanceServing(b *testing.B) {
	benchExperiment(b, experiments.E27DistanceServing)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: encoder throughput and per-query decode latency for each
// scheme on a shared power-law workload.
// ---------------------------------------------------------------------------

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := gen.ChungLuPowerLaw(1<<14, 2.5, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkEncodePowerLaw(b *testing.B) {
	g := benchGraph(b)
	s := core.NewPowerLawScheme(2.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodePowerLawParallel(b *testing.B) {
	g := benchGraph(b)
	s := core.NewPowerLawScheme(2.5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.EncodeParallel(g, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeSparse(b *testing.B) {
	g := benchGraph(b)
	s := core.NewSparseSchemeAuto()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Encode(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeForest(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (forest.Scheme{}).Encode(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeOneQuery(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (onequery.Scheme{Seed: 1}).Encode(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeDistanceF3(b *testing.B) {
	g, err := gen.ChungLuPowerLaw(1<<11, 2.5, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (distance.Scheme{Alpha: 2.5, F: 3}).Encode(g); err != nil {
			b.Fatal(err)
		}
	}
}

// queryPairs builds a deterministic query mix (half edges, half random).
func queryPairs(g *graph.Graph, count int) [][2]int {
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]int, 0, count)
	budget := count / 2
	g.Edges(func(u, v int) {
		if budget > 0 {
			pairs = append(pairs, [2]int{u, v})
			budget--
		}
	})
	for len(pairs) < count {
		pairs = append(pairs, [2]int{rng.Intn(g.N()), rng.Intn(g.N())})
	}
	return pairs
}

func benchDecode(b *testing.B, s core.Scheme) {
	b.Helper()
	g := benchGraph(b)
	lab, err := s.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	pairs := queryPairs(g, 4096)
	b.ReportMetric(float64(lab.Stats().Max), "maxlabelbits")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := lab.Adjacent(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchEngine builds the zero-allocation query engine over the compacted
// Theorem 4 labeling on the shared power-law workload.
func benchEngine(b *testing.B) (*core.QueryEngine, [][2]int) {
	b.Helper()
	g := benchGraph(b)
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewQueryEngine(lab.Compact())
	if err != nil {
		b.Fatal(err)
	}
	return eng, queryPairs(g, 4096)
}

// BenchmarkQueryEngineAdjacent must report 0 allocs/op: the engine's hot
// path is pure word-addressed probes into the arena slab.
func BenchmarkQueryEngineAdjacent(b *testing.B) {
	eng, pairs := benchEngine(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := eng.Adjacent(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEngineAdjacentManyInstrumented is the same batch with a live
// core.EngineMetrics attached: the tally-and-flush design must keep the path
// at 0 allocs/op, with the per-batch atomic flush amortized to noise.
func BenchmarkQueryEngineAdjacentManyInstrumented(b *testing.B) {
	eng, pairs := benchEngine(b)
	var em core.EngineMetrics
	eng.AttachMetrics(&em)
	out := make([]bool, 0, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eng.AdjacentMany(pairs, out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/query")
	if got := em.Queries.Load(); got != int64(b.N*len(pairs)) {
		b.Fatalf("metrics counted %d queries, drove %d", got, b.N*len(pairs))
	}
}

// BenchmarkQueryEngineAdjacentMany answers the whole 4096-pair batch per
// iteration into a reused result slice — also 0 allocs/op.
func BenchmarkQueryEngineAdjacentMany(b *testing.B) {
	eng, pairs := benchEngine(b)
	out := make([]bool, 0, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eng.AdjacentMany(pairs, out[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/query")
}

// BenchmarkQueryEngineAdjacentManySorted answers the shared 4096-pair batch
// through the offset-sorted schedule. Must report 0 allocs/op: the sort runs
// over the reused BatchScratch keys and the answers land in the caller's
// slice.
func BenchmarkQueryEngineAdjacentManySorted(b *testing.B) {
	eng, pairs := benchEngine(b)
	out := make([]bool, 0, len(pairs))
	var sc core.BatchScratch
	// One warm-up batch grows the scratch keys to the batch size; the timed
	// loop then runs entirely on reused memory.
	if _, err := eng.AdjacentManySorted(pairs, out[:0], &sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eng.AdjacentManySorted(pairs, out[:0], &sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/query")
}

// BenchmarkQueryEngineAdjacentManySortedZipf is the skew path E25 measures:
// a Zipf(s=1.1) probe stream over the degree-ordered arena, answered in
// offset-sorted order with the (u,v) result cache enabled — still 0
// allocs/op (the acceptance bar for the cache on the hot path).
func BenchmarkQueryEngineAdjacentManySortedZipf(b *testing.B) {
	g := benchGraph(b)
	s := core.NewPowerLawScheme(2.5)
	s.SetLayout(core.LayoutDegree)
	lab, err := s.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.EnableResultCache(16); err != nil {
		b.Fatal(err)
	}
	ps, err := experiments.NewProbeSampler(g, experiments.DistZipf, 1.1, 7)
	if err != nil {
		b.Fatal(err)
	}
	pairs := ps.Pairs(make([][2]int, 0, 4096), 4096)
	out := make([]bool, 0, len(pairs))
	var sc core.BatchScratch
	if _, err := eng.AdjacentManySorted(pairs, out[:0], &sc); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eng.AdjacentManySorted(pairs, out[:0], &sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/query")
}

func BenchmarkQueryEngineAdjacentManyParallel(b *testing.B) {
	eng, pairs := benchEngine(b)
	out := make([]bool, 0, len(pairs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		out, err = eng.AdjacentManyParallel(pairs, out[:0], 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pairs)), "ns/query")
}

func BenchmarkDecodePowerLaw(b *testing.B) { benchDecode(b, core.NewPowerLawScheme(2.5)) }
func BenchmarkDecodeSparse(b *testing.B)   { benchDecode(b, core.NewSparseSchemeAuto()) }
func BenchmarkDecodeForest(b *testing.B)   { benchDecode(b, forest.Scheme{}) }
func BenchmarkDecodeNeighborList(b *testing.B) {
	benchDecode(b, baseline.NeighborList{})
}

func BenchmarkDecodeOneQuery(b *testing.B) {
	g := benchGraph(b)
	enc, err := (onequery.Scheme{Seed: 1}).Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	pairs := queryPairs(g, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := enc.Adjacent(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeDistanceF3(b *testing.B) {
	g, err := gen.ChungLuPowerLaw(1<<11, 2.5, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	lab, err := (distance.Scheme{Alpha: 2.5, F: 3}).Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	pairs := queryPairs(g, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		if _, err := lab.Dist(p[0], p[1]); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate benchmarks.
// ---------------------------------------------------------------------------

func BenchmarkZeta(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := powerlaw.Zeta(2.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFKSBuild(b *testing.B) {
	keys := make([]uint64, 1<<15)
	for i := range keys {
		keys[i] = uint64(i)*2654435761 + 99
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := hashing.Build(keys, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChungLuGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.ChungLuPowerLaw(1<<14, 2.5, 2, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Generation-pipeline benchmarks (the BenchmarkGen prefix is the CI
// generation smoke target): sequential seed path vs sharded samplers +
// two-pass EdgeBuilder, plus the parallel edge-list I/O. See EXPERIMENTS.md
// E22 for the committed 1M-vertex table.
// ---------------------------------------------------------------------------

// genBenchN is the default workload size; override with GEN_BENCH_N (the
// EXPERIMENTS.md E22 table uses GEN_BENCH_N=1000000).
const genBenchN = 1 << 17

func genBenchSize(b *testing.B) int {
	b.Helper()
	if s := os.Getenv("GEN_BENCH_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			b.Fatalf("GEN_BENCH_N: %v", err)
		}
		return n
	}
	return genBenchN
}

func genBenchWeights(b *testing.B) []float64 {
	b.Helper()
	w, err := gen.PowerLawWeights(genBenchSize(b), 2.5, 2)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkGenChungLuSeq is the sequential seed path: single-stream
// sampler into the incremental Builder-backed CSR (via gen.ChungLu).
func BenchmarkGenChungLuSeq(b *testing.B) {
	w := genBenchWeights(b)
	b.ReportAllocs()
	b.ResetTimer()
	var m int
	for i := 0; i < b.N; i++ {
		m = gen.ChungLu(w, 1).M()
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func benchGenChungLuParallel(b *testing.B, workers int) {
	w := genBenchWeights(b)
	b.ReportAllocs()
	b.ResetTimer()
	var m int
	for i := 0; i < b.N; i++ {
		m = gen.ChungLuParallel(w, 1, workers).M()
	}
	b.ReportMetric(float64(m)*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkGenChungLuParallel1(b *testing.B) { benchGenChungLuParallel(b, 1) }
func BenchmarkGenChungLuParallel4(b *testing.B) { benchGenChungLuParallel(b, 4) }
func BenchmarkGenChungLuParallel8(b *testing.B) { benchGenChungLuParallel(b, 8) }

// genBenchEdges samples one fixed Chung–Lu edge set for the builder
// benchmarks.
func genBenchEdges(b *testing.B) (int, []graph.Edge) {
	b.Helper()
	g := gen.ChungLuParallel(genBenchWeights(b), 1, 1)
	edges := make([]graph.Edge, 0, g.M())
	g.Edges(func(u, v int) { edges = append(edges, graph.Edge{U: int32(u), V: int32(v)}) })
	return g.N(), edges
}

// BenchmarkGenBuilderBuild is the seed CSR path: per-vertex append slices
// plus per-vertex sort at Build.
func BenchmarkGenBuilderBuild(b *testing.B) {
	n, edges := genBenchEdges(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := graph.NewBuilder(n)
		for _, e := range edges {
			if err := bld.AddEdge(int(e.U), int(e.V)); err != nil {
				b.Fatal(err)
			}
		}
		if bld.Build().M() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func benchGenEdgeBuilderBuild(b *testing.B, workers int) {
	n, edges := genBenchEdges(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb := graph.NewEdgeBuilder(n, 1)
		eb.Shard(0).AddEdges(edges)
		if eb.Build(workers).M() != len(edges) {
			b.Fatal("edge count mismatch")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkGenEdgeBuilderBuild1(b *testing.B) { benchGenEdgeBuilderBuild(b, 1) }
func BenchmarkGenEdgeBuilderBuild4(b *testing.B) { benchGenEdgeBuilderBuild(b, 4) }
func BenchmarkGenEdgeBuilderBuild8(b *testing.B) { benchGenEdgeBuilderBuild(b, 8) }

func benchGenWrite(b *testing.B, workers int) {
	g, err := gen.ChungLuPowerLaw(genBenchSize(b), 2.5, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.WriteEdgeListParallel(io.Discard, workers); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkGenWriteEdgeListSeq(b *testing.B)       { benchGenWrite(b, 1) }
func BenchmarkGenWriteEdgeListParallel4(b *testing.B) { benchGenWrite(b, 4) }

func benchGenRead(b *testing.B, workers int) {
	g, err := gen.ChungLuPowerLaw(genBenchSize(b), 2.5, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := graph.ReadEdgeListParallel(bytes.NewReader(data), workers)
		if err != nil {
			b.Fatal(err)
		}
		if got.M() != g.M() {
			b.Fatal("edge count mismatch")
		}
	}
	b.ReportMetric(float64(g.M())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkGenReadEdgeListSeq(b *testing.B)       { benchGenRead(b, 1) }
func BenchmarkGenReadEdgeListParallel4(b *testing.B) { benchGenRead(b, 4) }

func BenchmarkBAGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gen.BarabasiAlbert(1<<14, 3, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlEmbed(b *testing.B) {
	p, err := powerlaw.NewParams(2.5, 1<<13)
	if err != nil {
		b.Fatal(err)
	}
	h := gen.ErdosRenyi(p.I1, 0.5, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.PlEmbed(p, h); err != nil {
			b.Fatal(err)
		}
	}
}
