package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// shardFleet boots count in-process shard servers over a sharded power-law
// labeling and returns their addresses plus the source graph.
func shardFleet(t *testing.T, count int) ([]string, *graph.Graph) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(300, 2.5, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("labeling not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, count, core.ShardRange)
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, count)
	for i, a := range arenas {
		eng, err := core.NewQueryEngineFromPermutedArena(a.Slab, a.BitLens, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.SetShard(core.ShardMap{Count: count, Index: i, Fn: core.ShardRange}); err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := adjserve.NewServer(eng, 0)
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs, g
}

// logAttr extracts one key=value attribute from a slog text line.
func logAttr(line, key string) (string, bool) {
	for _, f := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// addrWriter scans the router's stdout for the msg=listening readiness line
// (and the msg=admin line, when the admin plane is enabled) and delivers the
// resolved addresses from their addr attributes.
type addrWriter struct {
	mu        sync.Mutex
	buf       strings.Builder
	addrC     chan string
	adminC    chan string
	sent      bool
	adminSent bool
}

func newAddrWriter() *addrWriter {
	return &addrWriter{addrC: make(chan string, 1), adminC: make(chan string, 1)}
}

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, line := range strings.Split(w.buf.String(), "\n") {
		if !w.sent && strings.Contains(line, "msg=listening") {
			if addr, ok := logAttr(line, "addr"); ok {
				w.addrC <- addr
				w.sent = true
			}
		}
		if !w.adminSent && strings.Contains(line, "msg=admin") {
			if addr, ok := logAttr(line, "addr"); ok {
				w.adminC <- addr
				w.adminSent = true
			}
		}
	}
	return len(p), nil
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRouteAndDrain boots a 3-shard fleet plus the router daemon, checks
// routed answers against the graph over the full wire path, scrapes the
// per-shard metrics, and verifies the shutdown path drains cleanly.
func TestRouteAndDrain(t *testing.T) {
	addrs, g := shardFleet(t, 3)
	out := newAddrWriter()
	stop := make(chan struct{})
	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{
			"-shards", strings.Join(addrs, ","),
			"-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0",
		}, out, stop)
	}()
	var addr, admin string
	for addr == "" || admin == "" {
		select {
		case addr = <-out.addrC:
		case admin = <-out.adminC:
		case err := <-errC:
			t.Fatalf("router exited early: %v\n%s", err, out.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("no readiness lines\n%s", out.String())
		}
	}

	c, err := adjserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Info(); err != nil || n != g.N() {
		t.Fatalf("Info = %d, %v; want %d", n, err, g.N())
	}
	// Pairs spanning all three ownership ranges, answered in one batch.
	var pairs [][2]int
	for u := 0; u < g.N(); u += 7 {
		for v := u; v < g.N(); v += 83 {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	got, err := c.AdjacentMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		if want := p[0] != p[1] && g.HasEdge(p[0], p[1]); got[i] != want {
			t.Fatalf("(%d,%d) = %v, want %v", p[0], p[1], got[i], want)
		}
	}
	c.Close()

	resp, err := http.Get("http://" + admin + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d while serving", resp.StatusCode)
	}
	resp, err = http.Get("http://" + admin + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	wantSeries := []string{
		fmt.Sprintf("adjserve_router_queries_total %d", len(pairs)),
		"adjserve_router_frames_total 2", // the Info frame plus the query frame
	}
	for _, s := range wantSeries {
		if !strings.Contains(metrics, s+"\n") {
			t.Errorf("scrape missing %q", s)
		}
	}
	// Every shard served a slice of the fan-out: per-upstream batch counters
	// and the per-shard client families must be present and nonzero.
	for i := range addrs {
		series := fmt.Sprintf(`adjserve_router_upstream_batches_total{shard="%d"}`, i)
		if !strings.Contains(metrics, series+" 1\n") {
			t.Errorf("scrape missing %s 1", series)
		}
		family := fmt.Sprintf(`adjserve_client_frames_total{shard="%d"}`, i)
		if !strings.Contains(metrics, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}

	close(stop)
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("router exit: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("router did not drain\n%s", out.String())
	}
	if !strings.Contains(out.String(), "routed") {
		t.Errorf("missing route summary:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "msg=handshaked shards=3 fleet=shards") {
		t.Errorf("missing handshake line:\n%s", out.String())
	}
	// Admin shut down after the drain: the port no longer answers.
	if _, err := http.Get("http://" + admin + "/healthz"); err == nil {
		t.Error("admin endpoint still answering after shutdown")
	}
}

func TestMissingShardsFlag(t *testing.T) {
	if err := run(nil, newAddrWriter(), nil); err == nil {
		t.Fatal("no -shards accepted")
	}
}

// TestHandshakeFailure points the router at a dead address: run must fail
// fast instead of listening, and the admin plane (started before the
// handshake) must be torn down on the way out.
func TestHandshakeFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	out := newAddrWriter()
	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{"-shards", dead, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0"}, out, nil)
	}()
	select {
	case err := <-errC:
		if err == nil {
			t.Fatalf("dead shard accepted\n%s", out.String())
		}
		if !strings.Contains(err.Error(), "shard handshake") {
			t.Errorf("error %v does not name the handshake", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("run did not return on a dead shard\n%s", out.String())
	}
	select {
	case admin := <-out.adminC:
		if _, err := http.Get("http://" + admin + "/healthz"); err == nil {
			t.Error("admin endpoint still answering after a failed handshake")
		}
	default:
	}
}
