// Command plroute is the scatter-gather router for a sharded label fleet:
// it speaks the adjserve wire protocol downstream (clients see one server
// covering all n vertices) and upstream (one pipelined connection per shard
// server). Each request batch is split by owning shard, fanned out
// concurrently, and the per-shard answers are scattered back into request
// order — so aggregate q/s grows near-linearly with the shard count while
// clients keep the single-server API.
//
// Usage:
//
//	pllabel -scheme auto -in graph.el -o labels.pllb -shards 3
//	plserve -labels labels.pllb.shard0 -addr 127.0.0.1:7431 &
//	plserve -labels labels.pllb.shard1 -addr 127.0.0.1:7432 &
//	plserve -labels labels.pllb.shard2 -addr 127.0.0.1:7433 &
//	plroute -shards 127.0.0.1:7431,127.0.0.1:7432,127.0.0.1:7433
//	plquery -remote 127.0.0.1:7441        # interactive "u v" lines
//
// Startup handshakes every shard with opShardInfo and refuses to serve until
// all shards answered with a consistent fleet (same n, same ownership
// function, distinct shard indexes covering 0..count-1, identical fat sets);
// /readyz stays false until then. SIGINT/SIGTERM drain gracefully.
//
// A fleet of identical whole-store servers (every upstream reports a trivial
// one-shard map — e.g. R copies of plserve on the same distance store) is
// admitted as a replica fleet instead: requests are spread by owner-of-u for
// load, and distance frames (plquery -dist) are routed too, which a shard
// partition refuses.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/adjserve"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "plroute: %v\n", err)
		os.Exit(1)
	}
}

// run starts the router. stop, when non-nil, is an extra shutdown trigger
// used by tests in place of a signal.
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("plroute", flag.ContinueOnError)
	var (
		shardsStr   = fs.String("shards", "", "comma-separated shard server addresses, one plserve per shard file (required)")
		addr        = fs.String("addr", "127.0.0.1:7441", "listen address (port 0 picks a free port)")
		adminAddr   = fs.String("admin-addr", "", "admin HTTP address serving /metrics, /healthz, /readyz and /debug/pprof (empty disables; port 0 picks a free port)")
		maxBatch    = fs.Int("max-batch", 0, "max pairs per downstream request frame (0 = default)")
		maxConns    = fs.Int("max-conns", 0, "downstream connection admission cap; extra conns get a shed frame and a close (0 = unlimited)")
		traceSample = fs.Int64("trace-sample", 0, "self-sample every Nth routed frame into /debug/traces (0 = only trace frames that arrive traced)")
		slowlogMs   = fs.Int64("slowlog-ms", 0, "capture frames slower than this many milliseconds in /debug/slowlog, sampled or not (0 = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	addrs := splitAddrs(*shardsStr)
	if len(addrs) == 0 {
		return fmt.Errorf("-shards is required (comma-separated shard server addresses)")
	}
	logger := slog.New(slog.NewTextHandler(stdout, nil))

	// The admin plane comes up before the shard handshake so an orchestrator
	// can poll /readyz through a slow fleet start; it reports ready only once
	// every shard has answered opShardInfo and the fleet validated.
	var ready atomic.Bool
	var admin *obs.AdminServer
	var reg *obs.Registry
	if *adminAddr != "" {
		reg = obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		admin = obs.NewAdminServer(reg)
		admin.Readyz = func() error {
			if !ready.Load() {
				return errors.New("not serving")
			}
			return nil
		}
		resolved, err := admin.Listen(*adminAddr)
		if err != nil {
			return err
		}
		logger.Info("admin", "addr", resolved)
		go admin.Serve()
	}

	start := time.Now()
	r, err := adjserve.NewRouter(addrs, *maxBatch)
	if err != nil {
		if admin != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			admin.Shutdown(ctx)
			cancel()
		}
		return fmt.Errorf("shard handshake: %w", err)
	}
	defer r.Close()
	r.SetMaxConns(*maxConns)

	// The trace sink mirrors plserve's: downstream-traced frames always echo
	// the router-hop stage report, -trace-sample adds self-sampling, and
	// -slowlog-ms captures outliers (logged, rate-limited to ~1/s).
	sink := &obs.TraceSink{
		Ring:        obs.NewTraceRing(256),
		Slow:        obs.NewTraceRing(64),
		SampleEvery: *traceSample,
		SlowNs:      *slowlogMs * int64(time.Millisecond),
	}
	var lastSlowLog atomic.Int64
	sink.OnSlow = func(tr *obs.Trace) {
		now := time.Now().UnixNano()
		last := lastSlowLog.Load()
		if now-last < int64(time.Second) || !lastSlowLog.CompareAndSwap(last, now) {
			return
		}
		logger.Warn("slow_frame", "trace_id", obs.TraceID(tr.ID),
			"total_ns", tr.TotalNs, "pairs", tr.Pairs)
	}
	r.SetTraceSink(sink)
	if reg != nil {
		obs.RegisterBuildInfo(reg, "role", "router")
		r.RegisterMetrics(reg)
		sink.Register(reg)
		admin.SetTraceSink(sink)
	}
	fleet := "shards"
	if r.Replicas() {
		fleet = "replicas"
	}
	logger.Info("handshaked", "shards", r.Shards(), "fleet", fleet, "n", r.N(),
		"elapsed", time.Since(start).Round(time.Microsecond).String())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The msg=listening line is the readiness contract scripts wait for
	// (scripts/serving_smoke.sh extracts the resolved port from its addr key).
	logger.Info("listening", "addr", ln.Addr().String())
	ready.Store(true)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	done := make(chan struct{})
	quit := make(chan struct{}) // released when Serve returns on its own
	go func() {
		defer close(done)
		select {
		case sig := <-sigs:
			logger.Info("draining", "signal", sig.String())
		case <-stop:
		case <-quit:
		}
		ready.Store(false)
		r.Close()
	}()

	err = r.Serve(ln)
	close(quit)
	<-done
	// Admin shutdown is ordered after the drain: a scrape during the drain
	// window still sees the final counters (and readyz already says 503).
	if admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(ctx)
		cancel()
	}
	m := r.Metrics()
	logger.Info("routed", "queries", m.Queries.Load(), "frames", m.Frames.Load())
	if err == adjserve.ErrClosed {
		return nil
	}
	return err
}

// splitAddrs parses the -shards list, tolerating blanks from trailing commas.
func splitAddrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}
