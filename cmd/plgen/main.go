// Command plgen generates graphs in the repository's edge-list format.
//
// Usage:
//
//	plgen -model chunglu -n 10000 -alpha 2.5 [-seed N] [-workers K] [-o out.el]
//	plgen -model ba -n 10000 -m 3
//	plgen -model config -n 10000 -alpha 2.5
//	plgen -model er -n 10000 -p 0.001
//	plgen -model waxman -n 2000 -beta 0.4 -gamma 0.15
//	plgen -model lognormal -n 10000 -mu 1.0 -sigma 1.1
//	plgen -model hierarchical -n 4096
//	plgen -model pl -n 10000 -alpha 2.5        (Section 5 P_l construction)
//
// The chunglu, er, config and lognormal models sample, build and write with
// -workers goroutines (default GOMAXPROCS); output is deterministic for a
// fixed seed at every worker count. Output goes to stdout unless -o is
// given.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "plgen: %v\n", err)
		os.Exit(1)
	}
}

// phases carries the per-phase wall times of one generation run. Sample is
// the edge-sampling pass, build the CSR construction; models without a
// split pipeline report everything under sample with build = 0.
type phases struct {
	sample time.Duration
	build  time.Duration
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("plgen", flag.ContinueOnError)
	var (
		model   = fs.String("model", "chunglu", "chunglu | ba | config | er | waxman | lognormal | hierarchical | pl | tree")
		n       = fs.Int("n", 10000, "number of vertices")
		alpha   = fs.Float64("alpha", 2.5, "power-law exponent (chunglu, config, pl)")
		wmin    = fs.Float64("wmin", 2, "minimum expected degree (chunglu)")
		m       = fs.Int("m", 3, "attachment parameter (ba)")
		p       = fs.Float64("p", 0.001, "edge probability (er)")
		beta    = fs.Float64("beta", 0.4, "Waxman beta")
		gamma   = fs.Float64("gamma", 0.15, "Waxman gamma")
		mu      = fs.Float64("mu", 1.0, "lognormal log-mean")
		sigma   = fs.Float64("sigma", 1.1, "lognormal log-stddev")
		seed    = fs.Int64("seed", 1, "generator seed")
		workers = fs.Int("workers", runtime.GOMAXPROCS(0), "parallel workers for sampling, CSR build and writing")
		out     = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	g, ph, err := generate(*model, *n, *alpha, *wmin, *m, *p, *beta, *gamma, *mu, *sigma, *seed, *workers)
	if err != nil {
		return err
	}
	w := stdout
	var f *os.File
	if *out != "" {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	writeStart := time.Now()
	werr := g.WriteEdgeListParallel(w, *workers)
	// Close exactly once, whether or not the write failed, and surface the
	// Close error (a full disk often only reports at close time).
	if f != nil {
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
	}
	if werr != nil {
		return werr
	}
	writeTime := time.Since(writeStart)
	eps := func(d time.Duration) float64 { return float64(g.M()) / max(d.Seconds(), 1e-9) }
	fmt.Fprintf(os.Stderr, "plgen: %s graph, n=%d m=%d maxdeg=%d workers=%d\n",
		*model, g.N(), g.M(), g.MaxDegree(), *workers)
	if ph.build > 0 {
		fmt.Fprintf(os.Stderr, "plgen: sample %.3fs (%.0f edges/s), build %.3fs (%.0f edges/s), write %.3fs (%.0f edges/s)\n",
			ph.sample.Seconds(), eps(ph.sample), ph.build.Seconds(), eps(ph.build),
			writeTime.Seconds(), eps(writeTime))
	} else {
		fmt.Fprintf(os.Stderr, "plgen: generate %.3fs (%.0f edges/s), write %.3fs (%.0f edges/s)\n",
			ph.sample.Seconds(), eps(ph.sample), writeTime.Seconds(), eps(writeTime))
	}
	return nil
}

// buildPhased runs the sampled EdgeBuilder through its parallel CSR build,
// timing the two phases separately.
func buildPhased(sampleStart time.Time, eb *graph.EdgeBuilder, workers int) (*graph.Graph, phases, error) {
	sample := time.Since(sampleStart)
	buildStart := time.Now()
	g := eb.Build(workers)
	return g, phases{sample: sample, build: time.Since(buildStart)}, nil
}

func generate(model string, n int, alpha, wmin float64, m int, p, beta, gamma, mu, sigma float64, seed int64, workers int) (*graph.Graph, phases, error) {
	start := time.Now()
	whole := func(g *graph.Graph, err error) (*graph.Graph, phases, error) {
		return g, phases{sample: time.Since(start)}, err
	}
	switch model {
	case "chunglu":
		w, err := gen.PowerLawWeights(n, alpha, wmin)
		if err != nil {
			return nil, phases{}, err
		}
		return buildPhased(start, gen.ChungLuParallelEdges(w, seed, workers), workers)
	case "lognormal":
		w, err := gen.LogNormalWeights(n, mu, sigma, seed)
		if err != nil {
			return nil, phases{}, err
		}
		return buildPhased(start, gen.ChungLuParallelEdges(w, seed+1, workers), workers)
	case "er":
		if p <= 0 || p >= 1 || n < 2 {
			return whole(gen.ErdosRenyiParallel(n, p, seed, workers), nil)
		}
		return buildPhased(start, gen.ErdosRenyiParallelEdges(n, p, seed, workers), workers)
	case "config":
		kmax := n - 1
		if kmax < 1 {
			kmax = 1
		}
		deg, err := gen.PowerLawDegreeSequence(n, alpha, kmax, seed)
		if err != nil {
			return nil, phases{}, err
		}
		eb, err := gen.ConfigurationModelEdges(deg, seed+1, workers)
		if err != nil {
			return nil, phases{}, err
		}
		return buildPhased(start, eb, workers)
	case "ba":
		return whole(gen.BarabasiAlbert(n, m, seed))
	case "waxman":
		return whole(gen.Waxman(n, beta, gamma, seed))
	case "tree":
		return whole(gen.RandomTree(n, seed), nil)
	case "hierarchical":
		// 3 levels, fanout 4: leafSize chosen so the total is close to n.
		leaf := n / 16
		if leaf < 2 {
			leaf = 2
		}
		return whole(gen.Hierarchical(3, 4, leaf, 0.2, seed))
	case "pl":
		params, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, phases{}, err
		}
		h := gen.ErdosRenyi(params.I1, 0.5, seed)
		emb, err := gen.PlEmbed(params, h)
		if err != nil {
			return nil, phases{}, err
		}
		return whole(emb.G, nil)
	default:
		return nil, phases{}, fmt.Errorf("unknown model %q", model)
	}
}
