// Command plgen generates graphs in the repository's edge-list format.
//
// Usage:
//
//	plgen -model chunglu -n 10000 -alpha 2.5 [-seed N] [-o out.el]
//	plgen -model ba -n 10000 -m 3
//	plgen -model config -n 10000 -alpha 2.5
//	plgen -model er -n 10000 -p 0.001
//	plgen -model waxman -n 2000 -beta 0.4 -gamma 0.15
//	plgen -model lognormal -n 10000 -mu 1.0 -sigma 1.1
//	plgen -model hierarchical -n 4096
//	plgen -model pl -n 10000 -alpha 2.5        (Section 5 P_l construction)
//
// Output goes to stdout unless -o is given.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/powerlaw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "plgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("plgen", flag.ContinueOnError)
	var (
		model = fs.String("model", "chunglu", "chunglu | ba | config | er | waxman | lognormal | hierarchical | pl | tree")
		n     = fs.Int("n", 10000, "number of vertices")
		alpha = fs.Float64("alpha", 2.5, "power-law exponent (chunglu, config, pl)")
		wmin  = fs.Float64("wmin", 2, "minimum expected degree (chunglu)")
		m     = fs.Int("m", 3, "attachment parameter (ba)")
		p     = fs.Float64("p", 0.001, "edge probability (er)")
		beta  = fs.Float64("beta", 0.4, "Waxman beta")
		gamma = fs.Float64("gamma", 0.15, "Waxman gamma")
		mu    = fs.Float64("mu", 1.0, "lognormal log-mean")
		sigma = fs.Float64("sigma", 1.1, "lognormal log-stddev")
		seed  = fs.Int64("seed", 1, "generator seed")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	genStart := time.Now()
	g, err := generate(*model, *n, *alpha, *wmin, *m, *p, *beta, *gamma, *mu, *sigma, *seed)
	if err != nil {
		return err
	}
	genTime := time.Since(genStart)
	w := stdout
	var flush func() error
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		// Stream edges through one large buffer; a 14M-edge graph writes in
		// a handful of syscalls instead of one per bufio default block.
		bw := bufio.NewWriterSize(f, 1<<20)
		w = bw
		flush = func() error {
			if err := bw.Flush(); err != nil {
				return err
			}
			return f.Close()
		}
	}
	writeStart := time.Now()
	if err := g.WriteEdgeList(w); err != nil {
		return err
	}
	if flush != nil {
		if err := flush(); err != nil {
			return err
		}
	}
	writeTime := time.Since(writeStart)
	fmt.Fprintf(os.Stderr, "plgen: %s graph, n=%d m=%d maxdeg=%d\n", *model, g.N(), g.M(), g.MaxDegree())
	fmt.Fprintf(os.Stderr, "plgen: generate %.3fs (%.0f edges/s), write %.3fs (%.0f edges/s)\n",
		genTime.Seconds(), float64(g.M())/max(genTime.Seconds(), 1e-9),
		writeTime.Seconds(), float64(g.M())/max(writeTime.Seconds(), 1e-9))
	return nil
}

func generate(model string, n int, alpha, wmin float64, m int, p, beta, gamma, mu, sigma float64, seed int64) (*graph.Graph, error) {
	switch model {
	case "chunglu":
		return gen.ChungLuPowerLaw(n, alpha, wmin, seed)
	case "ba":
		return gen.BarabasiAlbert(n, m, seed)
	case "config":
		return gen.PowerLawConfiguration(n, alpha, seed)
	case "er":
		return gen.ErdosRenyi(n, p, seed), nil
	case "waxman":
		return gen.Waxman(n, beta, gamma, seed)
	case "tree":
		return gen.RandomTree(n, seed), nil
	case "lognormal":
		return gen.ChungLuLogNormal(n, mu, sigma, seed)
	case "hierarchical":
		// 3 levels, fanout 4: leafSize chosen so the total is close to n.
		leaf := n / 16
		if leaf < 2 {
			leaf = 2
		}
		return gen.Hierarchical(3, 4, leaf, 0.2, seed)
	case "pl":
		params, err := powerlaw.NewParams(alpha, n)
		if err != nil {
			return nil, err
		}
		h := gen.ErdosRenyi(params.I1, 0.5, seed)
		emb, err := gen.PlEmbed(params, h)
		if err != nil {
			return nil, err
		}
		return emb.G, nil
	default:
		return nil, fmt.Errorf("unknown model %q", model)
	}
}
