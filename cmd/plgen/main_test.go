package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestGenerateModels(t *testing.T) {
	cases := []struct {
		model string
		n     int
	}{
		{"chunglu", 500},
		{"ba", 500},
		{"config", 500},
		{"er", 200},
		{"waxman", 150},
		{"tree", 300},
		{"lognormal", 400},
		{"pl", 4096},
	}
	for _, tc := range cases {
		g, _, err := generate(tc.model, tc.n, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if g.N() != tc.n {
			t.Errorf("%s: n=%d, want %d", tc.model, g.N(), tc.n)
		}
	}
	if _, _, err := generate("hierarchical", 4096, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1, 2); err != nil {
		t.Fatalf("hierarchical: %v", err)
	}
	if _, _, err := generate("nope", 10, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1, 2); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunWritesEdgeList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "er", "-n", "50", "-p", "0.1", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Errorf("round-tripped n=%d", g.N())
	}
}

// TestRunWorkerInvariance asserts the flagship determinism contract at the
// CLI level: the emitted bytes are identical at every -workers value for a
// fixed seed.
func TestRunWorkerInvariance(t *testing.T) {
	for _, model := range []string{"chunglu", "er", "config"} {
		var ref bytes.Buffer
		if err := run([]string{"-model", model, "-n", "400", "-p", "0.02", "-seed", "7", "-workers", "1"}, &ref); err != nil {
			t.Fatalf("%s workers=1: %v", model, err)
		}
		for _, workers := range []string{"2", "7"} {
			var out bytes.Buffer
			if err := run([]string{"-model", model, "-n", "400", "-p", "0.02", "-seed", "7", "-workers", workers}, &out); err != nil {
				t.Fatalf("%s workers=%s: %v", model, workers, err)
			}
			if !bytes.Equal(ref.Bytes(), out.Bytes()) {
				t.Errorf("%s: output differs between -workers 1 and -workers %s", model, workers)
			}
		}
	}
}

// TestRunOutputFile exercises the -o path: the file must be written,
// closed exactly once, and parse back to the same graph as stdout output.
func TestRunOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.el")
	if err := run([]string{"-model", "chunglu", "-n", "300", "-seed", "3", "-o", path}, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := run([]string{"-model", "chunglu", "-n", "300", "-seed", "3"}, &direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, direct.Bytes()) {
		t.Error("-o file content differs from stdout content")
	}
	g, err := graph.ReadEdgeList(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 300 {
		t.Errorf("n=%d, want 300", g.N())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "bogus"}, &out); err == nil {
		t.Error("bogus model accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
