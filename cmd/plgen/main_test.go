package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestGenerateModels(t *testing.T) {
	cases := []struct {
		model string
		n     int
	}{
		{"chunglu", 500},
		{"ba", 500},
		{"config", 500},
		{"er", 200},
		{"waxman", 150},
		{"tree", 300},
		{"lognormal", 400},
		{"pl", 4096},
	}
	for _, tc := range cases {
		g, err := generate(tc.model, tc.n, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.model, err)
		}
		if g.N() != tc.n {
			t.Errorf("%s: n=%d, want %d", tc.model, g.N(), tc.n)
		}
	}
	if _, err := generate("hierarchical", 4096, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1); err != nil {
		t.Fatalf("hierarchical: %v", err)
	}
	if _, err := generate("nope", 10, 2.5, 2, 3, 0.05, 0.4, 0.15, 1.0, 1.1, 1); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestRunWritesEdgeList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "er", "-n", "50", "-p", "0.1", "-seed", "2"}, &out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Errorf("round-tripped n=%d", g.N())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-model", "bogus"}, &out); err == nil {
		t.Error("bogus model accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Error("bad flag accepted")
	}
}
