// Command plserve is the adjacency-serving daemon: it memory-maps a label
// store produced by pllabel -o, builds a zero-copy core.QueryEngine over the
// mapped blob, and answers batched adjacency queries over TCP with the
// internal/adjserve protocol. Startup cost is O(header) — the label bodies
// stay in the page cache and are shared by every plserve process (and every
// plquery) mapping the same file.
//
// Usage:
//
//	pllabel -scheme auto -in graph.el -o labels.pllb
//	plserve -labels labels.pllb -addr 127.0.0.1:7421
//	plquery -remote 127.0.0.1:7421        # interactive "u v" lines
//
// A distance store (pllabel -scheme dist-pll or dist-bounded) is served the
// same way: the daemon reads the store's scheme record kind, builds a
// core.DistEngine over the mapped slab instead, and answers distance frames
// (plquery -dist -remote ...). The tuning flags -pair-cache-bits and
// -sort-min apply to either plane.
//
// SIGINT/SIGTERM drain gracefully: in-flight frames are answered and
// flushed, then the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/labelstore"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintf(os.Stderr, "plserve: %v\n", err)
		os.Exit(1)
	}
}

// run starts the daemon. stop, when non-nil, is an extra shutdown trigger
// used by tests in place of a signal.
func run(args []string, stdout io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("plserve", flag.ContinueOnError)
	var (
		labelsPath  = fs.String("labels", "", "label store file (required)")
		addr        = fs.String("addr", "127.0.0.1:7421", "listen address (port 0 picks a free port)")
		adminAddr   = fs.String("admin-addr", "", "admin HTTP address serving /metrics, /healthz, /readyz and /debug/pprof (empty disables; port 0 picks a free port)")
		maxBatch    = fs.Int("max-batch", 0, "max pairs per request frame (0 = default)")
		useMmap     = fs.Bool("mmap", true, "memory-map the store (false forces the copying reader)")
		cacheBits   = fs.Int("pair-cache-bits", 0, "log2 slots of the (u,v) result cache (0 = disabled; enable only once the store is read-only warm)")
		sortMin     = fs.Int("sort-min", 0, "min pairs per frame to probe in arena-offset order (0 = disabled)")
		maxConns    = fs.Int("max-conns", 0, "connection admission cap; extra conns get a shed frame and a close (0 = unlimited)")
		shedDepth   = fs.Int("shed-depth", 0, "shed query/dist frames while more than this many frames are in flight across all conns (0 = never shed)")
		maxPending  = fs.Int("max-pending-resp", 0, "flush after this many unflushed responses per conn (0 = default)")
		traceSample = fs.Int64("trace-sample", 0, "self-sample every Nth served frame into /debug/traces (0 = only trace frames that arrive traced)")
		slowlogMs   = fs.Int64("slowlog-ms", 0, "capture frames slower than this many milliseconds in /debug/slowlog, sampled or not (0 = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *labelsPath == "" {
		return fmt.Errorf("-labels is required")
	}
	logger := slog.New(slog.NewTextHandler(stdout, nil))

	start := time.Now()
	var (
		store  *labelstore.File
		mapped bool
		closer func() error
	)
	if *useMmap {
		mf, err := labelstore.Open(*labelsPath)
		if err != nil {
			return err
		}
		store, mapped, closer = mf.File, mf.Mapped(), mf.Close
	} else {
		f, err := os.Open(*labelsPath)
		if err != nil {
			return err
		}
		store, err = labelstore.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		closer = func() error { return nil }
	}
	defer closer()

	// A store serves exactly one query plane: adjacency (the default) or
	// distance (a scheme-stamped pll/bdist store → core.DistEngine behind the
	// same listener, answering opDist frames). The engine-tuning flags
	// (-pair-cache-bits, -sort-min) apply to whichever engine the store
	// selects; attachMetrics abstracts over the two engine types for the
	// admin plane below.
	var (
		srv           *adjserve.Server
		attachMetrics func(*core.EngineMetrics)
		planeAttrs    []any
	)
	if da, ok := store.DistArena(); ok {
		deng, err := core.NewDistEngine(da)
		if err != nil {
			return fmt.Errorf("store %s is not servable: %w", *labelsPath, err)
		}
		// The result cache is attached before the engine is shared with any
		// connection goroutine (EnableResultCache's publication contract).
		if *cacheBits > 0 {
			if err := deng.EnableResultCache(*cacheBits); err != nil {
				return err
			}
		}
		srv = adjserve.NewServer(nil, *maxBatch)
		srv.SetDistEngine(deng)
		attachMetrics = deng.AttachMetrics
		planeAttrs = []any{"plane", "distance/" + store.SchemeKind()}
	} else {
		eng, err := engineFor(store)
		if err != nil {
			return fmt.Errorf("store %s is not servable: %w", *labelsPath, err)
		}
		if *cacheBits > 0 {
			if err := eng.EnableResultCache(*cacheBits); err != nil {
				return err
			}
		}
		// A shard store only holds its owned vertices' full labels (plus the
		// replicated fat set); attaching the shard map makes the engine answer
		// ErrNotResident for misrouted pairs instead of decoding a stub. plroute
		// reads the same map back over opShardInfo to route around it.
		if m, ok := store.Shard(); ok {
			if err := eng.SetShard(m); err != nil {
				return fmt.Errorf("store %s: %w", *labelsPath, err)
			}
			planeAttrs = []any{"shard", fmt.Sprintf("%d/%d", m.Index, m.Count), "fn", fmt.Sprint(m.Fn)}
		}
		srv = adjserve.NewServer(eng, *maxBatch)
		attachMetrics = eng.AttachMetrics
	}
	mode := "copied"
	if mapped {
		mode = "mmap"
	}
	layout := "id"
	if store.LayoutOrder() != nil {
		layout = "degree"
	}
	loadedAttrs := []any{"scheme", store.Scheme, "n", store.N(), "layout", layout}
	loadedAttrs = append(loadedAttrs, planeAttrs...)
	loadedAttrs = append(loadedAttrs, "mode", mode, "elapsed", time.Since(start).Round(time.Microsecond).String())
	logger.Info("loaded", loadedAttrs...)

	srv.SetSortedBatchMin(*sortMin)
	srv.SetMaxConns(*maxConns)
	srv.SetShedDepth(*shedDepth)
	srv.SetMaxPendingResponses(*maxPending)

	// The trace sink is always installed: downstream-traced frames echo their
	// stage report regardless of flags, -trace-sample adds self-sampling, and
	// -slowlog-ms captures outliers even when unsampled. Slowlog hits also log
	// (rate-limited to ~1/s so a latency storm cannot melt the log).
	sink := &obs.TraceSink{
		Ring:        obs.NewTraceRing(256),
		Slow:        obs.NewTraceRing(64),
		SampleEvery: *traceSample,
		SlowNs:      *slowlogMs * int64(time.Millisecond),
	}
	var lastSlowLog atomic.Int64
	sink.OnSlow = func(tr *obs.Trace) {
		now := time.Now().UnixNano()
		last := lastSlowLog.Load()
		if now-last < int64(time.Second) || !lastSlowLog.CompareAndSwap(last, now) {
			return
		}
		logger.Warn("slow_frame", "trace_id", obs.TraceID(tr.ID),
			"total_ns", tr.TotalNs, "pairs", tr.Pairs)
	}
	srv.SetTraceSink(sink)

	// The admin plane is optional and read-only: one registry spanning the
	// server, engine, store and runtime families, plus pprof. Readiness flips
	// before the query listener accepts and back off when draining starts, so
	// a load balancer stops routing while in-flight frames finish.
	var ready atomic.Bool
	var admin *obs.AdminServer
	if *adminAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterRuntimeMetrics(reg)
		obs.RegisterBuildInfo(reg, "scheme", string(store.Scheme), "layout", layout)
		srv.Metrics().Register(reg)
		engMetrics := new(core.EngineMetrics)
		engMetrics.Register(reg)
		attachMetrics(engMetrics)
		labelstore.RegisterMetrics(reg)
		srv.Traffic.Register(reg, "adjserve_traffic")
		sink.Register(reg)
		admin = obs.NewAdminServer(reg)
		admin.SetTraceSink(sink)
		// Readiness folds in the shedding latch: a load balancer should stop
		// routing to a server that is refusing work, and resume once the
		// queue drains below the release threshold.
		admin.Readyz = func() error {
			if !ready.Load() {
				return errors.New("not serving")
			}
			if srv.Shedding() {
				return errors.New("shedding load")
			}
			return nil
		}
		resolved, err := admin.Listen(*adminAddr)
		if err != nil {
			return err
		}
		logger.Info("admin", "addr", resolved)
		go admin.Serve()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The msg=listening line is the readiness contract scripts wait for
	// (scripts/serving_smoke.sh extracts the resolved port from its addr key).
	logger.Info("listening", "addr", ln.Addr().String())
	ready.Store(true)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigs)
	done := make(chan struct{})
	quit := make(chan struct{}) // released when Serve returns on its own
	go func() {
		defer close(done)
		select {
		case sig := <-sigs:
			logger.Info("draining", "signal", sig.String())
		case <-stop:
		case <-quit:
		}
		ready.Store(false)
		srv.Close()
	}()

	err = srv.Serve(ln)
	close(quit)
	<-done
	// Admin shutdown is ordered after the drain: a scrape during the drain
	// window still sees the final counters (and readyz already says 503).
	if admin != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		admin.Shutdown(ctx)
		cancel()
	}
	st := srv.Traffic.Stats()
	logger.Info("served", "queries", st.Fetches, "frames", st.Messages/2, "bytes", st.Bytes)
	if err == adjserve.ErrClosed {
		return nil
	}
	return err
}

// engineFor builds the serving engine: zero-copy from a v2 arena (id- or
// degree-ordered — a permuted store hands its logical→physical order along so
// the engine's id-indexed lookup stays exact), relocating otherwise. Only
// fat/thin-layout stores (the engine's label format) are servable; anything
// else fails here, at startup.
func engineFor(store *labelstore.File) (*core.QueryEngine, error) {
	if slab, bitLens, order, ok := store.ArenaLayout(); ok {
		return core.NewQueryEngineFromPermutedArena(slab, bitLens, order)
	}
	return core.NewQueryEngineFromLabels(store.Labels)
}
