package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelstore"
)

// storeFixture encodes a power-law graph (arena-backed v2 store) to a file.
func storeFixture(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(250, 2.5, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok {
		t.Fatal("labeling not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	store, err := labelstore.NewArenaFile(lab.Scheme(),
		map[string]string{"n": strconv.Itoa(g.N())}, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		t.Fatal(err)
	}
	return path, g
}

// addrWriter scans the daemon's stdout for the "listening on" readiness line
// and delivers the resolved address.
type addrWriter struct {
	mu    sync.Mutex
	buf   strings.Builder
	addrC chan string
	sent  bool
}

func newAddrWriter() *addrWriter { return &addrWriter{addrC: make(chan string, 1)} }

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		for _, line := range strings.Split(w.buf.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "plserve: listening on "); ok {
				w.addrC <- strings.TrimSpace(rest)
				w.sent = true
				break
			}
		}
	}
	return len(p), nil
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeAndDrain boots the daemon on a free port, checks remote answers
// against the graph, and verifies the shutdown path drains cleanly.
func TestServeAndDrain(t *testing.T) {
	for _, mmap := range []bool{true, false} {
		path, g := storeFixture(t)
		out := newAddrWriter()
		stop := make(chan struct{})
		errC := make(chan error, 1)
		args := []string{"-labels", path, "-addr", "127.0.0.1:0"}
		if !mmap {
			args = append(args, "-mmap=false")
		}
		go func() { errC <- run(args, out, stop) }()
		var addr string
		select {
		case addr = <-out.addrC:
		case err := <-errC:
			t.Fatalf("mmap=%v: daemon exited early: %v\n%s", mmap, err, out.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("mmap=%v: no listening line\n%s", mmap, out.String())
		}
		c, err := adjserve.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := c.Info(); err != nil || n != g.N() {
			t.Fatalf("mmap=%v: Info = %d, %v; want %d", mmap, n, err, g.N())
		}
		for u := 0; u < 40; u++ {
			for v := u + 1; v < 40; v += 3 {
				got, err := c.Adjacent(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if want := g.HasEdge(u, v); got != want {
					t.Fatalf("mmap=%v: (%d,%d) = %v, want %v", mmap, u, v, got, want)
				}
			}
		}
		c.Close()
		close(stop)
		select {
		case err := <-errC:
			if err != nil {
				t.Fatalf("mmap=%v: daemon exit: %v\n%s", mmap, err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("mmap=%v: daemon did not drain\n%s", mmap, out.String())
		}
		if !strings.Contains(out.String(), "served") {
			t.Errorf("mmap=%v: missing serve summary:\n%s", mmap, out.String())
		}
		wantMode := "(mmap"
		if !mmap {
			wantMode = "(copied"
		}
		if !strings.Contains(out.String(), wantMode) {
			t.Errorf("mmap=%v: loaded-mode line missing %q:\n%s", mmap, wantMode, out.String())
		}
	}
}

func TestMissingLabelsFlag(t *testing.T) {
	if err := run(nil, newAddrWriter(), nil); err == nil {
		t.Fatal("no -labels accepted")
	}
}

func TestUnservableStore(t *testing.T) {
	// An empty adjacency-matrix store builds an empty engine and serves; a
	// pre-closed stop channel makes run drain immediately either way, so
	// this pins down "run returns promptly, no error other than a refusal".
	path := filepath.Join(t.TempDir(), "bad.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, &labelstore.File{Scheme: "adjmatrix", Params: map[string]string{"n": "0"}}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{"-labels", path, "-addr", "127.0.0.1:0"}, newAddrWriter(), stop)
	}()
	select {
	case <-errC: // refusal or an immediately-drained serve: both fine
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return with a closed stop channel")
	}
}
