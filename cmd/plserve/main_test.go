package main

import (
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelstore"
)

// storeFixture encodes a power-law graph (arena-backed v2 store) to a file.
func storeFixture(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(250, 2.5, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, ok := lab.Arena()
	if !ok {
		t.Fatal("labeling not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	store, err := labelstore.NewArenaFile(lab.Scheme(),
		map[string]string{"n": strconv.Itoa(g.N())}, slab, bitLens)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		t.Fatal(err)
	}
	return path, g
}

// logAttr extracts one key=value attribute from a slog text line.
func logAttr(line, key string) (string, bool) {
	for _, f := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// addrWriter scans the daemon's stdout for the msg=listening readiness line
// (and the msg=admin line, when the admin plane is enabled) and delivers the
// resolved addresses from their addr attributes.
type addrWriter struct {
	mu        sync.Mutex
	buf       strings.Builder
	addrC     chan string
	adminC    chan string
	sent      bool
	adminSent bool
}

func newAddrWriter() *addrWriter {
	return &addrWriter{addrC: make(chan string, 1), adminC: make(chan string, 1)}
}

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	for _, line := range strings.Split(w.buf.String(), "\n") {
		if !w.sent && strings.Contains(line, "msg=listening") {
			if addr, ok := logAttr(line, "addr"); ok {
				w.addrC <- addr
				w.sent = true
			}
		}
		if !w.adminSent && strings.Contains(line, "msg=admin") {
			if addr, ok := logAttr(line, "addr"); ok {
				w.adminC <- addr
				w.adminSent = true
			}
		}
	}
	return len(p), nil
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeAndDrain boots the daemon on a free port, checks remote answers
// against the graph, and verifies the shutdown path drains cleanly.
func TestServeAndDrain(t *testing.T) {
	for _, mmap := range []bool{true, false} {
		path, g := storeFixture(t)
		out := newAddrWriter()
		stop := make(chan struct{})
		errC := make(chan error, 1)
		args := []string{"-labels", path, "-addr", "127.0.0.1:0"}
		if !mmap {
			args = append(args, "-mmap=false")
		}
		go func() { errC <- run(args, out, stop) }()
		var addr string
		select {
		case addr = <-out.addrC:
		case err := <-errC:
			t.Fatalf("mmap=%v: daemon exited early: %v\n%s", mmap, err, out.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("mmap=%v: no listening line\n%s", mmap, out.String())
		}
		c, err := adjserve.Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := c.Info(); err != nil || n != g.N() {
			t.Fatalf("mmap=%v: Info = %d, %v; want %d", mmap, n, err, g.N())
		}
		for u := 0; u < 40; u++ {
			for v := u + 1; v < 40; v += 3 {
				got, err := c.Adjacent(u, v)
				if err != nil {
					t.Fatal(err)
				}
				if want := g.HasEdge(u, v); got != want {
					t.Fatalf("mmap=%v: (%d,%d) = %v, want %v", mmap, u, v, got, want)
				}
			}
		}
		c.Close()
		close(stop)
		select {
		case err := <-errC:
			if err != nil {
				t.Fatalf("mmap=%v: daemon exit: %v\n%s", mmap, err, out.String())
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("mmap=%v: daemon did not drain\n%s", mmap, out.String())
		}
		if !strings.Contains(out.String(), "served") {
			t.Errorf("mmap=%v: missing serve summary:\n%s", mmap, out.String())
		}
		wantMode := "mode=mmap"
		if !mmap {
			wantMode = "mode=copied"
		}
		if !strings.Contains(out.String(), wantMode) {
			t.Errorf("mmap=%v: loaded-mode line missing %q:\n%s", mmap, wantMode, out.String())
		}
	}
}

// TestAdminEndpoint boots the daemon with the admin plane enabled, drives
// queries, and checks the whole observability contract over real HTTP:
// health and readiness, the metric families the issue promises, counter
// values matching the traffic driven, and readiness flipping 503 on drain.
func TestAdminEndpoint(t *testing.T) {
	path, g := storeFixture(t)
	out := newAddrWriter()
	stop := make(chan struct{})
	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{"-labels", path, "-addr", "127.0.0.1:0", "-admin-addr", "127.0.0.1:0"}, out, stop)
	}()
	var addr, admin string
	for addr == "" || admin == "" {
		select {
		case addr = <-out.addrC:
		case admin = <-out.adminC:
		case err := <-errC:
			t.Fatalf("daemon exited early: %v\n%s", err, out.String())
		case <-time.After(10 * time.Second):
			t.Fatalf("no readiness lines\n%s", out.String())
		}
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + admin + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz = %d while serving", code)
	}

	c, err := adjserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]int, 0, 100)
	for u := 0; u < 10; u++ {
		for v := 10; v < 20; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	if _, err := c.AdjacentMany(pairs, nil); err != nil {
		t.Fatal(err)
	}
	c.Close()

	_, metrics := get("/metrics")
	wantSeries := []string{
		"adjserve_queries_total 100",
		"engine_queries_total 100",
		"engine_batches_total 1",
		"adjserve_frames_total 1",
		"adjserve_connections_total 1",
	}
	for _, s := range wantSeries {
		if !strings.Contains(metrics, s+"\n") {
			t.Errorf("scrape missing %q", s)
		}
	}
	// The labelstore counters are package-level and accumulate across every
	// Open in the test process, so assert presence, not exact values.
	wantFamilies := []string{
		"adjserve_bytes_in_total", "adjserve_bytes_out_total",
		"adjserve_frame_latency_ns_bucket", "adjserve_traffic_bytes_total",
		"engine_branch_thin_total", "engine_batch_pairs_sum",
		`labelstore_open_total{mode="mmap"}`, "labelstore_open_ns_count",
		"labelstore_mapped_bytes", "labelstore_blob_bytes_total",
		"go_goroutines", "go_heap_alloc_bytes", "process_uptime_seconds_total",
	}
	for _, f := range wantFamilies {
		if !strings.Contains(metrics, "\n"+f) {
			t.Errorf("scrape missing family %s", f)
		}
	}
	_ = g

	close(stop)
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain\n%s", out.String())
	}
	// Admin shut down after the drain: the port no longer answers.
	if _, err := http.Get("http://" + admin + "/healthz"); err == nil {
		t.Error("admin endpoint still answering after shutdown")
	}
}

// TestServeShardStore boots the daemon on one shard of a 2-way split and
// checks the residency contract over the wire: the loaded line names the
// shard, owned pairs answer exactly, and a misrouted pair comes back as an
// error frame instead of a silently-wrong answer decoded from a stub.
func TestServeShardStore(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(250, 2.5, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		t.Fatal("labeling not arena-backed")
	}
	bitLens := make([]int, g.N())
	for v := range bitLens {
		l, err := lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		bitLens[v] = l.Len()
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, 2, core.ShardRange)
	if err != nil {
		t.Fatal(err)
	}
	store, err := labelstore.NewShardArenaFile(lab.Scheme(),
		map[string]string{"n": strconv.Itoa(g.N())}, arenas[0].Slab, arenas[0].BitLens, order,
		core.ShardMap{Count: 2, Index: 0, Fn: core.ShardRange})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "labels.pllb.shard0")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		t.Fatal(err)
	}

	out := newAddrWriter()
	stop := make(chan struct{})
	errC := make(chan error, 1)
	go func() { errC <- run([]string{"-labels", path, "-addr", "127.0.0.1:0"}, out, stop) }()
	var addr string
	select {
	case addr = <-out.addrC:
	case err := <-errC:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("no listening line\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shard=0/2 fn=range") {
		t.Errorf("loaded line does not name the shard:\n%s", out.String())
	}
	c, err := adjserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Shard 0 of a range split owns 0..n/2: pairs touching an owned vertex
	// answer; a thin–thin pair of two foreign vertices must be refused.
	for u := 0; u < 30; u++ {
		for v := u + 1; v < 30; v += 3 {
			got, err := c.Adjacent(u, v)
			if err != nil {
				t.Fatal(err)
			}
			if want := g.HasEdge(u, v); got != want {
				t.Fatalf("(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	eng, err := core.NewQueryEngineFromPermutedArena(arenas[0].Slab, arenas[0].BitLens, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetShard(core.ShardMap{Count: 2, Index: 0, Fn: core.ShardRange}); err != nil {
		t.Fatal(err)
	}
	foreign := -1
	for v := g.N() / 2; v < g.N()-1; v++ {
		if !eng.Resident(v) && !eng.Resident(v+1) {
			foreign = v
			break
		}
	}
	if foreign < 0 {
		t.Skip("every tail vertex is fat on this fixture")
	}
	if _, err := c.Adjacent(foreign, foreign+1); err == nil {
		t.Fatalf("misrouted pair (%d,%d) answered instead of erroring", foreign, foreign+1)
	}
	close(stop)
	if err := <-errC; err != nil {
		t.Fatalf("daemon exit: %v\n%s", err, out.String())
	}
}

func TestMissingLabelsFlag(t *testing.T) {
	if err := run(nil, newAddrWriter(), nil); err == nil {
		t.Fatal("no -labels accepted")
	}
}

func TestUnservableStore(t *testing.T) {
	// An empty adjacency-matrix store builds an empty engine and serves; a
	// pre-closed stop channel makes run drain immediately either way, so
	// this pins down "run returns promptly, no error other than a refusal".
	path := filepath.Join(t.TempDir(), "bad.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, &labelstore.File{Scheme: "adjmatrix", Params: map[string]string{"n": "0"}}); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	errC := make(chan error, 1)
	go func() {
		errC <- run([]string{"-labels", path, "-addr", "127.0.0.1:0"}, newAddrWriter(), stop)
	}()
	select {
	case <-errC: // refusal or an immediately-drained serve: both fine
	case <-time.After(10 * time.Second):
		t.Fatal("run did not return with a closed stop channel")
	}
}
