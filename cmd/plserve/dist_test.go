package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/labelstore"
	"repro/internal/schemes/distance"
)

// distStoreFixture encodes a pll distance store (degree layout) to a file and
// returns the path plus an in-process engine over the same labels for
// ground truth.
func distStoreFixture(t *testing.T) (string, *core.DistEngine) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(250, 2.5, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := distance.PLLScheme{}.EncodeArena(g, 2, core.LayoutDegree)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewDistEngine(arena)
	if err != nil {
		t.Fatal(err)
	}
	store, err := labelstore.NewDistArenaFile(distance.PLLScheme{}.Name(),
		map[string]string{"n": strconv.Itoa(g.N())}, arena)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dists.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		t.Fatal(err)
	}
	return path, eng
}

// TestServeDistanceStore boots the daemon on a distance store and checks the
// remote distance plane end to end: the loaded line declares the plane, the
// engine answers match, and adjacency frames are refused without killing the
// connection.
func TestServeDistanceStore(t *testing.T) {
	path, eng := distStoreFixture(t)
	out := newAddrWriter()
	stop := make(chan struct{})
	errC := make(chan error, 1)
	args := []string{"-labels", path, "-addr", "127.0.0.1:0", "-pair-cache-bits", "8"}
	go func() { errC <- run(args, out, stop) }()
	var addr string
	select {
	case addr = <-out.addrC:
	case err := <-errC:
		t.Fatalf("daemon exited early: %v\n%s", err, out.String())
	case <-time.After(10 * time.Second):
		t.Fatalf("no listening line\n%s", out.String())
	}
	c, err := adjserve.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := c.Info(); err != nil || n != eng.N() {
		t.Fatalf("Info = %d, %v; want %d", n, err, eng.N())
	}
	pairs := make([][2]int, 0, 300)
	for u := 0; u < 30; u++ {
		for v := 0; v < eng.N(); v += 29 {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	want, err := eng.DistMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.DistMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %v = %d, engine says %d", pairs[i], got[i], want[i])
		}
	}
	if _, err := c.Adjacent(0, 1); err == nil || !strings.Contains(err.Error(), "no adjacency engine") {
		t.Errorf("adjacency frame on distance daemon: err = %v", err)
	}
	if _, err := c.Dist(0, 1); err != nil {
		t.Errorf("distance after refused adjacency frame: %v", err)
	}
	c.Close()
	close(stop)
	select {
	case err := <-errC:
		if err != nil {
			t.Fatalf("daemon exit: %v\n%s", err, out.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon did not drain\n%s", out.String())
	}
	if !strings.Contains(out.String(), "plane=distance/pll") {
		t.Errorf("loaded line does not declare the distance plane:\n%s", out.String())
	}
}
