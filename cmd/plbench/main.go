// Command plbench regenerates the experiment tables of the paper's
// evaluation (see DESIGN.md for the experiment index and EXPERIMENTS.md for
// paper-vs-measured discussion).
//
// Usage:
//
//	plbench [-experiment E1] [-quick] [-seed N] [-list]
//
// With no -experiment flag every experiment runs in index order.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("plbench", flag.ContinueOnError)
	var (
		experiment   = fs.String("experiment", "", "experiment ID to run (e.g. E1); empty runs all")
		quick        = fs.Bool("quick", false, "reduced graph sizes (seconds instead of minutes)")
		seed         = fs.Int64("seed", 20160711, "generator seed")
		list         = fs.Bool("list", false, "list experiments and exit")
		format       = fs.String("format", "table", "output format: table | csv")
		probeDist    = fs.String("probe-dist", "", "probe distribution for skew experiments: uniform | zipf | degprop (empty = default sweep)")
		distOld      = fs.String("dist", "", "deprecated alias for -probe-dist (the name now belongs to the distance query plane)")
		zipfS        = fs.Float64("zipf-s", 1.1, "Zipf exponent for -probe-dist zipf")
		remote       = fs.String("remote", "", "external adjserve address (plroute or plserve) for E26's throughput drive")
		cpuprofile   = fs.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
		memprofile   = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mutexprofile = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blockprofile = fs.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Every profile is flushed and closed through a defer, so an error exit
	// (unknown experiment, failed run, bad format) still leaves valid profile
	// files behind — exactly the runs worth profiling are often the ones that
	// fail partway.
	if *cpuprofile != "" {
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memprofile != "" {
		defer func() {
			runtime.GC() // settle live-heap numbers before the snapshot
			writeProfile("heap", *memprofile)
		}()
	}
	// Contention profiles must be armed before the workload starts; each is
	// written on exit like -memprofile. Useful against the serving
	// experiments (E23), where lock and channel waits dominate tail latency.
	if *mutexprofile != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexprofile)
	}
	if *blockprofile != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockprofile)
	}
	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-4s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if *distOld != "" {
		fmt.Fprintln(os.Stderr, "plbench: -dist is deprecated, use -probe-dist")
		if *probeDist == "" {
			*probeDist = *distOld
		}
	}
	if *probeDist != "" {
		if _, err := experiments.ParseProbeDist(*probeDist); err != nil {
			return err
		}
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed, Dist: *probeDist, ZipfS: *zipfS, Remote: *remote}
	runners := experiments.All()
	if *experiment != "" {
		r, ok := experiments.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *experiment)
		}
		runners = []experiments.Runner{r}
	}
	render := func(t *experiments.Table) error { return t.Render(os.Stdout) }
	switch *format {
	case "table":
	case "csv":
		render = func(t *experiments.Table) error { return t.RenderCSV(os.Stdout) }
	default:
		return fmt.Errorf("unknown format %q (table | csv)", *format)
	}
	for _, r := range runners {
		start := time.Now()
		tables, err := r.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		for _, t := range tables {
			if err := render(t); err != nil {
				return err
			}
		}
		if *format == "table" {
			fmt.Printf("[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// startCPUProfile begins CPU profiling into path and returns the stop
// function to defer: it stops the profiler (flushing the final sample batch)
// and closes the file, surfacing close errors — the write that loses data on
// a full disk is the one in Close.
func startCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "plbench: cpuprofile: %v\n", err)
		}
	}, nil
}

// writeProfile snapshots a named runtime profile (heap, mutex, block) to
// path, reporting write and close failures rather than silently truncating.
func writeProfile(name, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %sprofile: %v\n", name, err)
		return
	}
	if err := pprof.Lookup(name).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %sprofile: %v\n", name, err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "plbench: %sprofile: %v\n", name, err)
	}
}
