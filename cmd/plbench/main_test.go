package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run([]string{"-format", "yaml", "-experiment", "E13", "-quick"}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRunOneExperimentCSV(t *testing.T) {
	if err := run([]string{"-experiment", "E13", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-experiment", "E13", "-quick", "-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

// TestRunErrorExitStillWritesProfiles: an error exit (unknown experiment)
// must still stop, flush and close every armed profile — valid non-empty
// files, not truncated ones.
func TestRunErrorExitStillWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	mtx := filepath.Join(dir, "mutex.pprof")
	blk := filepath.Join(dir, "block.pprof")
	err := run([]string{"-experiment", "E99",
		"-cpuprofile", cpu, "-memprofile", mem, "-mutexprofile", mtx, "-blockprofile", blk})
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, p := range []string{cpu, mem, mtx, blk} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written on error exit: %v", p, err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty on error exit", p)
		}
	}
}

func TestRunBadProfilePath(t *testing.T) {
	if err := run([]string{"-experiment", "E13", "-quick", "-cpuprofile", "/nonexistent/dir/cpu.pprof"}); err == nil {
		t.Error("unwritable cpuprofile path accepted")
	}
}
