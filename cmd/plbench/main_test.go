package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "E99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run([]string{"-format", "yaml", "-experiment", "E13", "-quick"}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestRunOneExperimentCSV(t *testing.T) {
	if err := run([]string{"-experiment", "E13", "-quick", "-format", "csv"}); err != nil {
		t.Fatal(err)
	}
}
