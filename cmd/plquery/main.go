// Command plquery answers adjacency queries from a label store produced by
// pllabel -o. The graph itself is never loaded — queries are resolved from
// the stored labels alone, which is the whole point of a labeling scheme.
//
// Usage:
//
//	pllabel -scheme auto -in graph.el -o labels.pllb
//	plquery -labels labels.pllb            # interactive: "u v" per line
//	echo "3 17" | plquery -labels labels.pllb
//	plquery -labels labels.pllb -batch -workers 8 < pairs.txt
//	plquery -remote 127.0.0.1:7421 -batch < pairs.txt
//	plquery -dist -labels dists.pllb       # "u v d" lines; d=-1 unreachable
//	plquery -dist -remote 127.0.0.1:7421   # against a distance-serving plserve
//
// For fat/thin label stores, queries are served by the pre-parsed
// zero-allocation core.QueryEngine; -batch reads all pairs up front and
// answers them in one (optionally sharded-parallel) batch call. With
// -remote, queries go to a running plserve daemon over the adjserve batch
// protocol instead of loading any labels locally — output is line-for-line
// identical to the local mode on the same store.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/labelstore"
	"repro/internal/schemes/baseline"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "plquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("plquery", flag.ContinueOnError)
	var (
		labelsPath = fs.String("labels", "", "label store file (required unless -remote)")
		remote     = fs.String("remote", "", "plserve address; answer via the network instead of local labels")
		stats      = fs.Bool("stats", false, "print store statistics and exit")
		batch      = fs.Bool("batch", false, "read all pairs, answer as one batch")
		workers    = fs.Int("workers", 1, "batch shards (0 = GOMAXPROCS); needs -batch, local only")
		dist       = fs.Bool("dist", false, "answer hop distances (-1 = unreachable/beyond bound); needs a distance store or server")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *labelsPath == "" && *remote == "":
		return fmt.Errorf("one of -labels or -remote is required")
	case *labelsPath != "" && *remote != "":
		return fmt.Errorf("-labels and -remote are mutually exclusive")
	case *remote != "" && *stats:
		return fmt.Errorf("-stats needs the label store; use -labels")
	}

	// answer/answerMany resolve adjacency queries, distTo/distToMany hop
	// distances (-dist selects which set is wired); vertex bounds are
	// pre-checked against n, so all of them only see in-range pairs.
	var (
		n          int
		answer     func(u, v int) (bool, error)
		answerMany func(pairs [][2]int, out []bool) ([]bool, error)
		distTo     func(u, v int) (int, error)
		distToMany func(pairs [][2]int, out []int) ([]int, error)
	)
	if *remote != "" {
		client, err := adjserve.Dial(*remote)
		if err != nil {
			return err
		}
		defer client.Close()
		if n, err = client.Info(); err != nil {
			return err
		}
		if *dist {
			distTo = client.Dist
			distToMany = client.DistMany
		} else {
			answer = client.Adjacent
			answerMany = client.AdjacentMany
		}
	} else {
		f, err := os.Open(*labelsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		store, err := labelstore.Read(f)
		if err != nil {
			return err
		}
		if n, err = store.IntParam("n"); err != nil {
			return err
		}
		if *stats {
			max, total := 0, int64(0)
			for _, l := range store.Labels {
				if l.Len() > max {
					max = l.Len()
				}
				total += int64(l.Len())
			}
			fmt.Fprintf(stdout, "scheme=%s n=%d max=%d bits mean=%.1f bits\n",
				store.Scheme, store.N(), max, float64(total)/float64(max1(store.N())))
			return nil
		}
		if *dist || store.SchemeKind() != labelstore.SchemeAdjacency {
			// The distance plane: the store's scheme record kind and -dist
			// must agree — misreading one plane's labels as the other's
			// would answer garbage, so both directions fail loudly.
			da, ok := store.DistArena()
			switch {
			case !*dist:
				return fmt.Errorf("store %s holds %s distance labels; pass -dist", *labelsPath, store.SchemeKind())
			case !ok:
				return fmt.Errorf("-dist needs a distance store; %s holds adjacency labels", *labelsPath)
			}
			eng, err := core.NewDistEngine(da)
			if err != nil {
				return err
			}
			distTo = eng.Dist
			distToMany = func(pairs [][2]int, out []int) ([]int, error) {
				return eng.DistManyParallel(pairs, out, *workers)
			}
			return serve(stdin, stdout, n, *batch, answer, answerMany, distTo, distToMany)
		}
		dec, err := decoderFor(store.Scheme, n)
		if err != nil {
			return err
		}

		// Fat/thin stores are served through the pre-parsed zero-allocation
		// query engine; other layouts (and stores whose labels the engine
		// rejects at build time) fall back to the per-query decoder. A
		// format-v2 store hands its word-aligned blob to the engine zero-copy
		// — no relocation between disk and the probe arena.
		var eng *core.QueryEngine
		if _, ok := dec.(*core.FatThinDecoder); ok {
			if slab, bitLens, order, ok := store.ArenaLayout(); ok {
				if e, err := core.NewQueryEngineFromPermutedArena(slab, bitLens, order); err == nil {
					eng = e
				}
			}
			if eng == nil {
				if e, err := core.NewQueryEngineFromLabels(store.Labels); err == nil {
					eng = e
				}
			}
		}
		// A shard store only resolves pairs its residents cover; attaching the
		// map turns misrouted pairs into errors instead of stub-decoded
		// nonsense. Whole-keyspace queries need the full store or -remote
		// against a plroute front.
		if m, ok := store.Shard(); ok {
			if eng == nil {
				return fmt.Errorf("shard store %s needs the query engine (scheme %s)", *labelsPath, store.Scheme)
			}
			if err := eng.SetShard(m); err != nil {
				return err
			}
		}
		answer = func(u, v int) (bool, error) {
			if eng != nil {
				return eng.Adjacent(u, v)
			}
			return dec.Adjacent(store.Labels[u], store.Labels[v])
		}
		answerMany = func(pairs [][2]int, out []bool) ([]bool, error) {
			if eng != nil {
				return eng.AdjacentManyParallel(pairs, out, *workers)
			}
			for _, p := range pairs {
				adj, err := answer(p[0], p[1])
				if err != nil {
					return out, err
				}
				out = append(out, adj)
			}
			return out, nil
		}
	}
	return serve(stdin, stdout, n, *batch, answer, answerMany, distTo, distToMany)
}

// serve runs the query loop over stdin. Exactly one plane's answer pair is
// non-nil: adjacency prints "u v true|false", distance prints "u v d" with
// d = -1 for unreachable-or-beyond-bound pairs.
func serve(stdin io.Reader, stdout io.Writer, n int, batch bool,
	answer func(u, v int) (bool, error),
	answerMany func(pairs [][2]int, out []bool) ([]bool, error),
	distTo func(u, v int) (int, error),
	distToMany func(pairs [][2]int, out []int) ([]int, error),
) error {
	// Each input line becomes one output line, in order: either a
	// preformatted parse error or the index of a pending query.
	type entry struct {
		text    string // non-empty: emit verbatim
		pairIdx int
	}
	var entries []entry
	var pairs [][2]int
	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			entries = append(entries, entry{text: fmt.Sprintf("error: want \"u v\", got %q", line)})
		} else {
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || u < 0 || u >= n || v < 0 || v >= n {
				entries = append(entries, entry{text: fmt.Sprintf("error: invalid vertex pair %q (n=%d)", line, n)})
			} else {
				entries = append(entries, entry{pairIdx: len(pairs)})
				pairs = append(pairs, [2]int{u, v})
			}
		}
		if !batch {
			// Streaming mode: answer and flush line by line.
			e := entries[0]
			entries = entries[:0]
			if e.text != "" {
				fmt.Fprintln(stdout, e.text)
				continue
			}
			p := pairs[0]
			pairs = pairs[:0]
			if distTo != nil {
				d, err := distTo(p[0], p[1])
				if err != nil {
					fmt.Fprintf(stdout, "error: %v\n", err)
					continue
				}
				fmt.Fprintf(stdout, "%d %d %d\n", p[0], p[1], d)
				continue
			}
			adj, err := answer(p[0], p[1])
			if err != nil {
				fmt.Fprintf(stdout, "error: %v\n", err)
				continue
			}
			fmt.Fprintf(stdout, "%d %d %v\n", p[0], p[1], adj)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !batch {
		return nil
	}
	var emit func(i int) string
	if distTo != nil {
		results, err := distToMany(pairs, make([]int, 0, len(pairs)))
		if err != nil {
			return err
		}
		emit = func(i int) string { return strconv.Itoa(results[i]) }
	} else {
		results, err := answerMany(pairs, make([]bool, 0, len(pairs)))
		if err != nil {
			return err
		}
		emit = func(i int) string { return strconv.FormatBool(results[i]) }
	}
	for _, e := range entries {
		if e.text != "" {
			fmt.Fprintln(stdout, e.text)
			continue
		}
		p := pairs[e.pairIdx]
		fmt.Fprintf(stdout, "%d %d %s\n", p[0], p[1], emit(e.pairIdx))
	}
	return nil
}

// decoderFor maps stored scheme names to their label-pair decoders.
func decoderFor(scheme string, n int) (core.AdjacencyDecoder, error) {
	switch {
	case strings.HasPrefix(scheme, "compressed+"):
		return core.NewCompressedDecoder(n), nil
	case strings.HasPrefix(scheme, "sparse"),
		strings.HasPrefix(scheme, "powerlaw"),
		strings.HasPrefix(scheme, "fatthin"),
		scheme == "nbrlist":
		return core.NewFatThinDecoder(n), nil
	case scheme == "adjmatrix":
		return baseline.NewAdjMatrixDecoder(n), nil
	default:
		return nil, fmt.Errorf("no decoder registered for scheme %q", scheme)
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
