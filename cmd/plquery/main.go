// Command plquery answers adjacency queries from a label store produced by
// pllabel -o. The graph itself is never loaded — queries are resolved from
// the stored labels alone, which is the whole point of a labeling scheme.
//
// Usage:
//
//	pllabel -scheme auto -in graph.el -o labels.pllb
//	plquery -labels labels.pllb            # interactive: "u v" per line
//	echo "3 17" | plquery -labels labels.pllb
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/labelstore"
	"repro/internal/schemes/baseline"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "plquery: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("plquery", flag.ContinueOnError)
	var (
		labelsPath = fs.String("labels", "", "label store file (required)")
		stats      = fs.Bool("stats", false, "print store statistics and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *labelsPath == "" {
		return fmt.Errorf("-labels is required")
	}
	f, err := os.Open(*labelsPath)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := labelstore.Read(f)
	if err != nil {
		return err
	}
	n, err := store.IntParam("n")
	if err != nil {
		return err
	}
	dec, err := decoderFor(store.Scheme, n)
	if err != nil {
		return err
	}

	if *stats {
		max, total := 0, int64(0)
		for _, l := range store.Labels {
			if l.Len() > max {
				max = l.Len()
			}
			total += int64(l.Len())
		}
		fmt.Fprintf(stdout, "scheme=%s n=%d max=%d bits mean=%.1f bits\n",
			store.Scheme, store.N(), max, float64(total)/float64(max1(store.N())))
		return nil
	}

	sc := bufio.NewScanner(stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Fprintf(stdout, "error: want \"u v\", got %q\n", line)
			continue
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || u < 0 || u >= store.N() || v < 0 || v >= store.N() {
			fmt.Fprintf(stdout, "error: invalid vertex pair %q (n=%d)\n", line, store.N())
			continue
		}
		adj, err := dec.Adjacent(store.Labels[u], store.Labels[v])
		if err != nil {
			fmt.Fprintf(stdout, "error: %v\n", err)
			continue
		}
		fmt.Fprintf(stdout, "%d %d %v\n", u, v, adj)
	}
	return sc.Err()
}

// decoderFor maps stored scheme names to their label-pair decoders.
func decoderFor(scheme string, n int) (core.AdjacencyDecoder, error) {
	switch {
	case strings.HasPrefix(scheme, "sparse"),
		strings.HasPrefix(scheme, "powerlaw"),
		strings.HasPrefix(scheme, "fatthin"),
		scheme == "nbrlist":
		return core.NewFatThinDecoder(n), nil
	case scheme == "adjmatrix":
		return baseline.NewAdjMatrixDecoder(n), nil
	default:
		return nil, fmt.Errorf("no decoder registered for scheme %q", scheme)
	}
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
