package main

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/labelstore"
	"repro/internal/schemes/distance"
)

// distStoreFixture writes a pll distance store and returns its path plus an
// in-process engine over the same labels.
func distStoreFixture(t *testing.T) (string, *core.DistEngine) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(150, 2.5, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := distance.PLLScheme{}.EncodeArena(g, 1, core.LayoutDegree)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewDistEngine(arena)
	if err != nil {
		t.Fatal(err)
	}
	store, err := labelstore.NewDistArenaFile(distance.PLLScheme{}.Name(),
		map[string]string{"n": strconv.Itoa(g.N())}, arena)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		t.Fatal(err)
	}
	return path, eng
}

// TestQueryDistLocal answers distances from the store file, streaming and
// batch, and checks them against the engine.
func TestQueryDistLocal(t *testing.T) {
	path, eng := distStoreFixture(t)
	var in bytes.Buffer
	var pairs [][2]int
	for u := 0; u < 12; u++ {
		for v := 0; v < eng.N(); v += 13 {
			fmt.Fprintf(&in, "%d %d\n", u, v)
			pairs = append(pairs, [2]int{u, v})
		}
	}
	want, err := eng.DistMany(pairs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range []bool{false, true} {
		args := []string{"-dist", "-labels", path}
		if batch {
			args = append(args, "-batch", "-workers", "2")
		}
		var out bytes.Buffer
		if err := run(args, bytes.NewReader(in.Bytes()), &out); err != nil {
			t.Fatalf("batch=%v: %v", batch, err)
		}
		lines := strings.Split(strings.TrimSpace(out.String()), "\n")
		if len(lines) != len(pairs) {
			t.Fatalf("batch=%v: %d output lines for %d pairs", batch, len(lines), len(pairs))
		}
		for i, line := range lines {
			wantLine := fmt.Sprintf("%d %d %d", pairs[i][0], pairs[i][1], want[i])
			if line != wantLine {
				t.Fatalf("batch=%v: line %d = %q, want %q", batch, i, line, wantLine)
			}
		}
	}
}

// TestQueryDistRemote drives -dist against a live distance server and checks
// output equality with the local mode on the same store.
func TestQueryDistRemote(t *testing.T) {
	path, eng := distStoreFixture(t)
	srv := adjserve.NewServer(nil, 0)
	srv.SetDistEngine(eng)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	var in bytes.Buffer
	for u := 0; u < 20; u++ {
		fmt.Fprintf(&in, "%d %d\n", u, (u*37)%eng.N())
	}
	var local, remote bytes.Buffer
	if err := run([]string{"-dist", "-labels", path, "-batch"}, bytes.NewReader(in.Bytes()), &local); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-dist", "-remote", ln.Addr().String(), "-batch"}, bytes.NewReader(in.Bytes()), &remote); err != nil {
		t.Fatal(err)
	}
	if local.String() != remote.String() {
		t.Errorf("remote output differs from local:\nlocal:\n%s\nremote:\n%s", local.String(), remote.String())
	}
}

// TestQueryDistPlaneMismatch: the store kind and the -dist flag must agree.
func TestQueryDistPlaneMismatch(t *testing.T) {
	distPath, _ := distStoreFixture(t)
	adjPath, _ := storeFixture(t)
	var out bytes.Buffer
	err := run([]string{"-labels", distPath}, strings.NewReader("0 1\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "pass -dist") {
		t.Errorf("distance store without -dist: err = %v", err)
	}
	err = run([]string{"-dist", "-labels", adjPath}, strings.NewReader("0 1\n"), &out)
	if err == nil || !strings.Contains(err.Error(), "adjacency labels") {
		t.Errorf("-dist on adjacency store: err = %v", err)
	}
}
