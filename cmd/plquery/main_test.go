package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/adjserve"
	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/labelstore"
)

// storeFixture labels a small graph and writes a label store, returning the
// path and the graph for truth checks.
func storeFixture(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g := gen.ErdosRenyi(40, 0.12, 9)
	lab, err := core.NewSparseSchemeAuto().Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]bitstr.String, g.N())
	for v := range labels {
		labels[v], err = lab.Label(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "l.pllb")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := labelstore.Write(f, &labelstore.File{
		Scheme: lab.Scheme(),
		Params: map[string]string{"n": strconv.Itoa(g.N())},
		Labels: labels,
	}); err != nil {
		t.Fatal(err)
	}
	return path, g
}

func TestQueryAnswersMatchGraph(t *testing.T) {
	path, g := storeFixture(t)
	var in bytes.Buffer
	type q struct{ u, v int }
	var qs []q
	for u := 0; u < 10; u++ {
		for v := u + 1; v < 10; v++ {
			in.WriteString(strconv.Itoa(u) + " " + strconv.Itoa(v) + "\n")
			qs = append(qs, q{u, v})
		}
	}
	var out bytes.Buffer
	if err := run([]string{"-labels", path}, &in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(qs) {
		t.Fatalf("%d answers for %d queries", len(lines), len(qs))
	}
	for i, line := range lines {
		want := strconv.FormatBool(g.HasEdge(qs[i].u, qs[i].v))
		if !strings.HasSuffix(line, want) {
			t.Errorf("query %v: got %q, want suffix %v", qs[i], line, want)
		}
	}
}

func TestQueryStatsFlag(t *testing.T) {
	path, _ := storeFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-labels", path, "-stats"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=40") {
		t.Errorf("stats output %q", out.String())
	}
}

func TestQueryBadInputLines(t *testing.T) {
	path, _ := storeFixture(t)
	in := strings.NewReader("garbage\n1\n0 999\n# comment\n\n0 1\n")
	var out bytes.Buffer
	if err := run([]string{"-labels", path}, in, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "error:") != 3 {
		t.Errorf("want 3 error lines, got output:\n%s", s)
	}
	if !strings.Contains(s, "0 1 ") {
		t.Errorf("valid query not answered:\n%s", s)
	}
}

func TestQueryMissingFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, strings.NewReader(""), &out); err == nil {
		t.Error("missing -labels accepted")
	}
	if err := run([]string{"-labels", "/nonexistent/file"}, strings.NewReader(""), &out); err == nil {
		t.Error("nonexistent store accepted")
	}
}

func TestDecoderFor(t *testing.T) {
	for _, name := range []string{"sparse(auto)", "powerlaw(α=2.5)", "fatthin(τ=3)", "nbrlist", "adjmatrix"} {
		if _, err := decoderFor(name, 10); err != nil {
			t.Errorf("decoderFor(%q): %v", name, err)
		}
	}
	if _, err := decoderFor("mystery", 10); err == nil {
		t.Error("unknown scheme accepted")
	}
}

// TestQueryRemoteMode: -remote against a loopback adjserve server over the
// same labeling must produce byte-identical output to the local -labels
// mode, in both streaming and batch form (including interleaved parse
// errors, which never reach the network).
func TestQueryRemoteMode(t *testing.T) {
	path, _ := storeFixture(t)
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	store, err := labelstore.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewQueryEngineFromLabels(store.Labels)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := adjserve.NewServer(eng, 0)
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	input := "garbage\n0 1\n2 3\n0 999\n4 5\n# c\n6 7\n"
	var want bytes.Buffer
	if err := run([]string{"-labels", path}, strings.NewReader(input), &want); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{nil, {"-batch"}} {
		var got bytes.Buffer
		if err := run(append([]string{"-remote", addr}, extra...),
			strings.NewReader(input), &got); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("remote%v output differs\nremote:\n%s\nlocal:\n%s",
				extra, got.String(), want.String())
		}
	}
	// Flag validation: the two sources are mutually exclusive, and -stats
	// needs the store file.
	var out bytes.Buffer
	if err := run([]string{"-labels", path, "-remote", addr}, strings.NewReader(""), &out); err == nil {
		t.Error("-labels with -remote accepted")
	}
	if err := run([]string{"-remote", addr, "-stats"}, strings.NewReader(""), &out); err == nil {
		t.Error("-remote with -stats accepted")
	}
}

// TestQueryBatchMode: -batch must produce exactly the streaming output
// (same lines, same order, parse errors interleaved), for both serial and
// sharded-parallel batch answering.
func TestQueryBatchMode(t *testing.T) {
	path, _ := storeFixture(t)
	input := "garbage\n0 1\n2 3\n0 999\n4 5\n# c\n6 7\n"
	var want bytes.Buffer
	if err := run([]string{"-labels", path}, strings.NewReader(input), &want); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []string{"1", "4", "0"} {
		var got bytes.Buffer
		if err := run([]string{"-labels", path, "-batch", "-workers", workers},
			strings.NewReader(input), &got); err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Errorf("workers=%s: batch output differs\nbatch:\n%s\nstreaming:\n%s",
				workers, got.String(), want.String())
		}
	}
}
