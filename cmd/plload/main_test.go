package main

import (
	"bytes"
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/adjserve"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gen"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("64:0.9,4096:0.1")
	if err != nil {
		t.Fatal(err)
	}
	if len(mix) != 2 || mix[0].size != 64 || mix[1].size != 4096 {
		t.Fatalf("mix = %+v", mix)
	}
	if got := mix[0].weight + mix[1].weight; got < 0.999 || got > 1.001 {
		t.Fatalf("weights sum to %g, want 1", got)
	}
	if mix[0].weight < 0.89 || mix[0].weight > 0.91 {
		t.Fatalf("weight[0] = %g, want 0.9", mix[0].weight)
	}
	if m, err := parseMix("64"); err != nil || len(m) != 1 || m[0].weight != 1 {
		t.Fatalf("bare size mix = %+v, err %v", m, err)
	}
	for _, bad := range []string{"", "0", "-5", "64:0", "64:x", "x:1"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

// TestWorkloadDeterministicMix checks the pre-generated schedule realizes the
// weighted mix and is reproducible in the seed.
func TestWorkloadDeterministicMix(t *testing.T) {
	sampler, err := experiments.NewProbeSamplerDegrees(1000, nil, experiments.DistUniform, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &config{
		mix:      []mixClass{{size: 8, weight: 0.75}, {size: 64, weight: 0.25}},
		distFrac: 0.5, seed: 7,
	}
	w := buildWorkload(cfg, sampler)
	small, dist := 0, 0
	const slots = 10000
	for k := uint64(0); k < slots; k++ {
		pairs, isDist := w.pick(k)
		if len(pairs) == 8 {
			small++
		} else if len(pairs) != 64 {
			t.Fatalf("slot %d: batch of %d pairs, want 8 or 64", k, len(pairs))
		}
		if isDist {
			dist++
		}
	}
	if frac := float64(small) / slots; frac < 0.70 || frac > 0.80 {
		t.Fatalf("small-batch fraction = %g, want ~0.75", frac)
	}
	if frac := float64(dist) / slots; frac < 0.45 || frac > 0.55 {
		t.Fatalf("dist fraction = %g, want ~0.5", frac)
	}
	// Same seed, same stream.
	sampler2, _ := experiments.NewProbeSamplerDegrees(1000, nil, experiments.DistUniform, 0, 7)
	w2 := buildWorkload(cfg, sampler2)
	for k := uint64(0); k < 100; k++ {
		p1, d1 := w.pick(k)
		p2, d2 := w2.pick(k)
		if d1 != d2 || len(p1) != len(p2) || p1[0] != p2[0] {
			t.Fatalf("slot %d diverged across identical seeds", k)
		}
	}
}

// startLoadServer serves a labeled power-law graph on loopback.
func startLoadServer(t *testing.T, n int) (string, *adjserve.Server) {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := adjserve.NewServer(eng, 0)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), srv
}

// TestOpenLoopAgainstLoopback is the end-to-end harness check: a short
// open-loop run against a real server completes frames, reports sane numbers
// and appends a well-formed JSON row.
func TestOpenLoopAgainstLoopback(t *testing.T) {
	addr, _ := startLoadServer(t, 2000)
	jsonPath := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{
		"-addr", addr,
		"-duration", "700ms", "-warmup", "100ms",
		"-rate", "400",
		"-conns", "2", "-workers", "2",
		"-batch", "8:0.8,64:0.2",
		"-seed", "3",
		"-json", jsonPath, "-label", "smoke",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "mode=open") || !strings.Contains(out.String(), "achieved=") {
		t.Fatalf("report missing fields:\n%s", out.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rows []row
	if err := json.Unmarshal(data, &rows); err != nil {
		t.Fatalf("bench file not a row array: %v\n%s", err, data)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows, want 1", len(rows))
	}
	r := rows[0]
	if r.Label != "smoke" || r.Mode != "open" || r.OfferedQPS != 400 {
		t.Fatalf("row provenance wrong: %+v", r)
	}
	if r.FramesOK == 0 || r.AchievedQPS <= 0 {
		t.Fatalf("no frames completed: %+v", r)
	}
	if r.FramesErr != 0 {
		t.Fatalf("%d error frames against a healthy server: %+v", r.FramesErr, r)
	}
	if r.P50us <= 0 || r.P99us < r.P50us || r.P999us < r.P99us {
		t.Fatalf("latency quantiles not sane: %+v", r)
	}

	// Appending a second row must preserve the first.
	var out2 bytes.Buffer
	err = run([]string{
		"-addr", addr, "-duration", "300ms", "-warmup", "50ms",
		"-conns", "1", "-workers", "1", "-batch", "4",
		"-json", jsonPath, "-label", "smoke2",
	}, &out2)
	if err != nil {
		t.Fatalf("second run: %v\n%s", err, out2.String())
	}
	data, _ = os.ReadFile(jsonPath)
	rows = nil
	if err := json.Unmarshal(data, &rows); err != nil || len(rows) != 2 {
		t.Fatalf("append broke the file: %d rows, err %v", len(rows), err)
	}
	if rows[0].Label != "smoke" || rows[1].Label != "smoke2" {
		t.Fatalf("row order wrong: %s, %s", rows[0].Label, rows[1].Label)
	}
	if rows[1].Mode != "closed" {
		t.Fatalf("rate 0 run mode = %s, want closed", rows[1].Mode)
	}
}

// TestOverloadedServerShedsNotFails pins the server's latch and checks the
// harness charges refused work to the shed column, not the error column.
func TestOverloadedServerShedsNotFails(t *testing.T) {
	g, err := gen.ChungLuPowerLaw(500, 2.5, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	lab, err := core.NewPowerLawScheme(2.5).Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewQueryEngine(lab)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := adjserve.NewServer(eng, 0)
	srv.SetShedDepth(1)
	go srv.Serve(ln)
	defer srv.Close()
	srv.Metrics().QueuedFrames.Add(5) // every query frame sheds

	var out bytes.Buffer
	err = run([]string{
		"-addr", ln.Addr().String(),
		"-duration", "300ms", "-warmup", "50ms",
		"-conns", "1", "-workers", "1", "-batch", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "shed=") {
		t.Fatalf("report missing shed count:\n%s", out.String())
	}
	// All query frames were refused; none may be misfiled as errors.
	if strings.Contains(out.String(), "shed=0 ") {
		t.Fatalf("no sheds recorded against a shedding server:\n%s", out.String())
	}
}
