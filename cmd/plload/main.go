// Command plload is the serving tier's load generator: it drives a running
// plserve or plroute with an open-loop (constant-rate) or closed-loop
// (saturating) stream of batched adjacency and distance queries and reports
// latency quantiles that remain honest under overload.
//
// The open-loop schedule is coordinated-omission safe in the wrk2 sense:
// request k has an *intended* send time T0 + k/rate fixed before the run
// starts, workers consume slots from a shared counter, and every latency is
// measured from the intended time — so when the server stalls, the queueing
// delay the stall inflicts on every subsequent request is charged to the
// server instead of silently vanishing into a slower send loop. Closed-loop
// mode (-rate 0) measures pure service time at saturation instead.
//
// Pair endpoints are drawn from the experiment harness's probe marginals
// (uniform | zipf | degprop via experiments.ProbeSampler), so the generator
// produces the same hub-heavy skew the experiments measure. Batch sizes mix
// by weight (-batch "64:0.9,4096:0.1"), and -dist-frac splits traffic between
// the adjacency and distance planes. Chaos flags add slow (bandwidth-
// throttled) clients and mid-run connection kills to exercise the server's
// admission, shedding and the client's jittered redial.
//
// Usage:
//
//	plload -addr 127.0.0.1:7421 -rate 2000 -duration 10s -batch 64
//	plload -addr 127.0.0.1:7421 -rate 0 -conns 4 -batch 64:0.9,4096:0.1
//	plload -addr 127.0.0.1:7421 -pair-dist zipf -zipf-s 1.1 -graph g.el
//	plload -addr 127.0.0.1:7421 -slow-conns 2 -slow-bps 65536 -kill-every 2s
//	plload -addr 127.0.0.1:7421 -json BENCH_serving.json -label knee_2k
//
// With -json, one result row (offered/achieved rate, latency quantiles, shed
// and error counts, git revision) is appended to a JSON array file — the
// tracked BENCH_serving.json is a concatenation of such rows across configs.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adjserve"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "plload: %v\n", err)
		os.Exit(1)
	}
}

// config is one run's fully parsed shape, kept separate from flag.FlagSet so
// tests can drive run() with arg slices and assert on the emitted row.
type config struct {
	addr      string
	duration  time.Duration
	warmup    time.Duration
	rate      float64 // frames/sec across all conns; 0 = closed loop
	conns     int
	workers   int // per conn
	distFrac  float64
	mix       []mixClass
	dist      experiments.ProbeDist
	zipfS     float64
	seed      int64
	slowConns int
	slowBPS   int
	killEvery time.Duration
	label     string
	traceN    int64 // trace every Nth frame (0 = tracing off)
}

// mixClass is one batch-size class and its traffic share.
type mixClass struct {
	size   int
	weight float64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("plload", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "server address (plserve or plroute; required)")
		duration  = fs.Duration("duration", 10*time.Second, "measured run length")
		warmup    = fs.Duration("warmup", 1*time.Second, "initial slice excluded from the stats")
		rate      = fs.Float64("rate", 0, "offered request frames/sec across all conns (0 = closed loop)")
		conns     = fs.Int("conns", 2, "concurrent client connections")
		workers   = fs.Int("workers", 4, "concurrent in-flight requests per connection")
		distFrac  = fs.Float64("dist-frac", 0, "fraction of frames sent to the distance plane [0,1]")
		batchMix  = fs.String("batch", "64", "batch-size mix: \"64\" or \"64:0.9,4096:0.1\"")
		pairDist  = fs.String("pair-dist", "uniform", "endpoint marginal: uniform | zipf | degprop")
		zipfS     = fs.Float64("zipf-s", 1.1, "zipf exponent for -pair-dist zipf")
		graphPath = fs.String("graph", "", "edge list for vertex degrees (required for zipf/degprop)")
		seed      = fs.Int64("seed", 1, "workload seed: same seed, same probe stream")
		slowConns = fs.Int("slow-conns", 0, "how many of the conns are bandwidth-throttled chaos clients")
		slowBPS   = fs.Int("slow-bps", 64<<10, "throttle for slow conns, bytes/sec each way")
		killEvery = fs.Duration("kill-every", 0, "kill a random connection this often (0 = never)")
		jsonPath  = fs.String("json", "", "append one result row to this JSON array file")
		label     = fs.String("label", "", "config label for the JSON row")
		traceN    = fs.Int64("trace-sample", 0, "request end-to-end tracing for every Nth frame and report per-stage latency attribution (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	if *conns < 1 || *workers < 1 {
		return fmt.Errorf("-conns and -workers must be >= 1")
	}
	if *slowConns < 0 || *slowConns > *conns {
		return fmt.Errorf("-slow-conns must be in [0, conns]")
	}
	if *distFrac < 0 || *distFrac > 1 {
		return fmt.Errorf("-dist-frac must be in [0,1]")
	}
	if *warmup >= *duration {
		return fmt.Errorf("-warmup (%v) must be shorter than -duration (%v)", *warmup, *duration)
	}
	mix, err := parseMix(*batchMix)
	if err != nil {
		return err
	}
	pd, err := experiments.ParseProbeDist(*pairDist)
	if err != nil {
		return err
	}
	if pd != experiments.DistUniform && *graphPath == "" {
		return fmt.Errorf("-pair-dist %s needs -graph for vertex degrees", pd)
	}

	cfg := &config{
		addr: *addr, duration: *duration, warmup: *warmup, rate: *rate,
		conns: *conns, workers: *workers, distFrac: *distFrac, mix: mix,
		dist: pd, zipfS: *zipfS, seed: *seed,
		slowConns: *slowConns, slowBPS: *slowBPS, killEvery: *killEvery,
		label: *label, traceN: *traceN,
	}

	// Handshake: the server knows n; degrees (for skew) come from the graph
	// file, which must describe the same vertex set.
	probe, err := adjserve.Dial(cfg.addr)
	if err != nil {
		return err
	}
	n, err := probe.Info()
	probe.Close()
	if err != nil {
		return err
	}
	var deg []int
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			return err
		}
		g, err := graph.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return err
		}
		if g.N() != n {
			return fmt.Errorf("graph %s has n=%d but server serves n=%d", *graphPath, g.N(), n)
		}
		deg = g.Degrees()
	}
	sampler, err := experiments.NewProbeSamplerDegrees(n, deg, pd, *zipfS, *seed)
	if err != nil {
		return err
	}

	res, err := drive(cfg, sampler)
	if err != nil {
		return err
	}
	report(stdout, cfg, res)
	if *jsonPath != "" {
		if err := appendRow(*jsonPath, makeRow(cfg, res)); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "row appended to %s\n", *jsonPath)
	}
	return nil
}

// parseMix parses "64" or "64:0.9,4096:0.1" into normalized classes.
func parseMix(s string) ([]mixClass, error) {
	var mix []mixClass
	total := 0.0
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		size, weight := part, "1"
		if i := strings.IndexByte(part, ':'); i >= 0 {
			size, weight = part[:i], part[i+1:]
		}
		sz, err := strconv.Atoi(size)
		if err != nil || sz < 1 {
			return nil, fmt.Errorf("bad batch size %q in mix %q", size, s)
		}
		w, err := strconv.ParseFloat(weight, 64)
		if err != nil || w <= 0 {
			return nil, fmt.Errorf("bad batch weight %q in mix %q", weight, s)
		}
		mix = append(mix, mixClass{size: sz, weight: w})
		total += w
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty batch mix %q", s)
	}
	for i := range mix {
		mix[i].weight /= total
	}
	return mix, nil
}

// workload is the pre-generated request stream: for each mix class a ring of
// distinct pair batches, plus a shuffled schedule mapping slot index to class
// so the mix interleaves rather than phases. Everything is generated up front
// from the seeded sampler, so the measured loop allocates nothing and the
// stream is deterministic in the seed.
type workload struct {
	classes  [][][][2]int // [class][ring][pair]
	schedule []int        // slot % len → class index
	distMod  uint64       // slots with hash(k) % 1000 < distMod go to the distance plane
}

// batchesPerClass balances memory against cache-resonance artifacts: enough
// distinct batches that the server never sees the same pairs twice in quick
// succession, few enough that a 4096-pair class stays a few MB.
const batchesPerClass = 32

func buildWorkload(cfg *config, sampler *experiments.ProbeSampler) *workload {
	w := &workload{distMod: uint64(cfg.distFrac * 1000)}
	for _, mc := range cfg.mix {
		ring := make([][][2]int, batchesPerClass)
		for i := range ring {
			ring[i] = sampler.Pairs(make([][2]int, 0, mc.size), mc.size)
		}
		w.classes = append(w.classes, ring)
	}
	// A 1000-slot schedule gives 0.1% mix resolution; the deterministic
	// shuffle interleaves classes instead of sending all of one then all of
	// the other.
	w.schedule = make([]int, 1000)
	acc, idx := 0.0, 0
	for c, mc := range cfg.mix {
		acc += mc.weight
		for ; idx < len(w.schedule) && float64(idx) < acc*float64(len(w.schedule)); idx++ {
			w.schedule[idx] = c
		}
	}
	for ; idx < len(w.schedule); idx++ {
		w.schedule[idx] = len(cfg.mix) - 1
	}
	rng := rand.New(rand.NewSource(cfg.seed ^ 0x5eed))
	rng.Shuffle(len(w.schedule), func(i, j int) {
		w.schedule[i], w.schedule[j] = w.schedule[j], w.schedule[i]
	})
	return w
}

// class returns the batch for schedule slot k and whether it goes to the
// distance plane. Knuth's multiplicative hash decorrelates the plane choice
// from the mix schedule.
func (w *workload) pick(k uint64) (pairs [][2]int, dist bool) {
	c := w.schedule[k%uint64(len(w.schedule))]
	ring := w.classes[c]
	pairs = ring[(k/uint64(len(w.schedule)))%uint64(len(ring))]
	dist = (k*2654435761)%1000 < w.distMod
	return pairs, dist
}

// tracker remembers a client's current net.Conn so the chaos killer can cut
// it mid-run; the client's next call redials through its jittered backoff.
type tracker struct {
	mu  sync.Mutex
	cur net.Conn
}

func (t *tracker) set(c net.Conn) {
	t.mu.Lock()
	t.cur = c
	t.mu.Unlock()
}

func (t *tracker) kill() bool {
	t.mu.Lock()
	c := t.cur
	t.cur = nil
	t.mu.Unlock()
	if c == nil {
		return false
	}
	c.Close()
	return true
}

// slowConn throttles both directions of a connection to bps by sleeping in
// proportion to bytes moved — a crude token bucket that is plenty to model a
// straggler consumer for the server's backpressure to push against.
type slowConn struct {
	net.Conn
	bps int
}

func (c *slowConn) throttle(n int) {
	if n > 0 && c.bps > 0 {
		time.Sleep(time.Duration(float64(n) / float64(c.bps) * float64(time.Second)))
	}
}

func (c *slowConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.throttle(n)
	return n, err
}

func (c *slowConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.throttle(n)
	return n, err
}

// results aggregates a run. Latencies are raw nanosecond samples (merged and
// sorted once at the end), so the reported quantiles are exact rather than
// bucketed — a load generator can afford the memory a server cannot.
type results struct {
	sent, ok, shed, errs atomic.Int64
	pairsOK              atomic.Int64
	kills                int64
	slowOK               atomic.Int64 // chaos-conn completions, excluded from latency

	mu        sync.Mutex
	latencies []int64 // ns, measured conns only, post-warmup
	elapsed   time.Duration

	trace traceStats
}

// traceStats aggregates the sampled end-to-end traces: per-(stage,hop)
// nanosecond samples for the attribution table, plus per-call wall time and
// stage-sum so the report can state how much of the observed latency the
// stages explain.
type traceStats struct {
	mu      sync.Mutex
	samples map[traceRowKey][]int64
	e2eNs   int64 // total wall time across traced calls
	stageNs int64 // total per-stage time across traced calls
	calls   int64
}

type traceRowKey struct{ stage, hop uint8 }

// add folds one traced call's tally in. wallNs is the call's own wall time
// (send → last response), the denominator the stage sum is compared against.
func (ts *traceStats) add(t *obs.SpanTally, wallNs int64) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.samples == nil {
		ts.samples = make(map[traceRowKey][]int64)
	}
	ts.calls++
	ts.e2eNs += wallNs
	for _, st := range t.Stages() {
		// Shard-indexed entries nest inside the peer's upstream window, so
		// only the top-level hops count toward the coverage invariant.
		if st.Hop == obs.HopSelf || st.Hop == obs.HopPeer {
			ts.stageNs += st.Ns
		}
		k := traceRowKey{st.Stage, st.Hop}
		ts.samples[k] = append(ts.samples[k], st.Ns)
	}
}

func (r *results) record(worker []int64) []int64 {
	r.mu.Lock()
	r.latencies = append(r.latencies, worker...)
	r.mu.Unlock()
	return worker[:0]
}

// drive runs the configured load against the server and collects results.
func drive(cfg *config, sampler *experiments.ProbeSampler) (*results, error) {
	w := buildWorkload(cfg, sampler)
	res := &results{}

	clients := make([]*adjserve.Client, cfg.conns)
	trackers := make([]*tracker, cfg.conns)
	for i := range clients {
		c := adjserve.NewClient(cfg.addr)
		tr := &tracker{}
		slow := i < cfg.slowConns
		bps := cfg.slowBPS
		c.DialFunc = func(addr string) (net.Conn, error) {
			nc, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			if slow {
				nc = &slowConn{Conn: nc, bps: bps}
			}
			tr.set(nc)
			return nc, nil
		}
		clients[i] = c
		trackers[i] = tr
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	start := time.Now()
	deadline := start.Add(cfg.duration)
	measureFrom := start.Add(cfg.warmup)
	interval := time.Duration(0)
	if cfg.rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.rate)
	}

	stopKiller := make(chan struct{})
	var killerWG sync.WaitGroup
	if cfg.killEvery > 0 {
		killerWG.Add(1)
		go func() {
			defer killerWG.Done()
			rng := rand.New(rand.NewSource(cfg.seed ^ 0xdead))
			t := time.NewTicker(cfg.killEvery)
			defer t.Stop()
			for {
				select {
				case <-stopKiller:
					return
				case <-t.C:
					if trackers[rng.Intn(len(trackers))].kill() {
						atomic.AddInt64(&res.kills, 1)
					}
				}
			}
		}()
	}

	// The schedule counter is shared by every worker on every conn: slot k's
	// intended send time is start + k*interval regardless of which worker
	// gets to it, which is exactly the coordinated-omission-safe contract.
	var slot atomic.Uint64
	var wg sync.WaitGroup
	for ci, c := range clients {
		slowC := ci < cfg.slowConns
		for wi := 0; wi < cfg.workers; wi++ {
			wg.Add(1)
			go func(c *adjserve.Client, slowC bool) {
				defer wg.Done()
				lats := make([]int64, 0, 4096)
				boolOut := make([]bool, 0, 4096)
				distOut := make([]int, 0, 4096)
				var tally obs.SpanTally
				for {
					k := slot.Add(1) - 1
					intended := start
					if interval > 0 {
						intended = start.Add(time.Duration(k) * interval)
						if intended.After(deadline) {
							break
						}
						if d := time.Until(intended); d > 0 {
							time.Sleep(d)
						}
					} else {
						intended = time.Now()
						if intended.After(deadline) {
							break
						}
					}
					pairs, isDist := w.pick(k)
					res.sent.Add(1)
					traced := cfg.traceN > 0 && k%uint64(cfg.traceN) == 0
					var err error
					var callStart time.Time
					if traced {
						tally.Reset()
						callStart = time.Now()
					}
					switch {
					case traced && isDist:
						_, err = c.DistManyTrace(pairs, distOut[:0], &tally)
					case traced:
						_, err = c.AdjacentManyTrace(pairs, boolOut[:0], &tally)
					case isDist:
						_, err = c.DistMany(pairs, distOut[:0])
					default:
						_, err = c.AdjacentMany(pairs, boolOut[:0])
					}
					lat := time.Since(intended)
					if traced && err == nil && !slowC {
						res.trace.add(&tally, int64(time.Since(callStart)))
					}
					switch {
					case err == nil:
						res.pairsOK.Add(int64(len(pairs)))
						if slowC {
							res.slowOK.Add(1)
						} else {
							res.ok.Add(1)
							if !intended.Before(measureFrom) {
								lats = append(lats, int64(lat))
								if len(lats) == cap(lats) {
									lats = res.record(lats)
								}
							}
						}
					case errors.Is(err, adjserve.ErrShed):
						res.shed.Add(1)
					default:
						res.errs.Add(1)
					}
				}
				res.record(lats)
			}(c, slowC)
		}
	}
	wg.Wait()
	close(stopKiller)
	killerWG.Wait()
	res.elapsed = time.Since(start)
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}

// quantile reads an exact quantile from the sorted sample set.
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func report(out io.Writer, cfg *config, res *results) {
	mode, offered := "closed", achievedQPS(cfg, res)
	if cfg.rate > 0 {
		mode, offered = "open", cfg.rate
	}
	fmt.Fprintf(out, "plload: mode=%s offered=%.1f/s achieved=%.1f/s elapsed=%v\n",
		mode, offered, achievedQPS(cfg, res), res.elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "frames: sent=%d ok=%d shed=%d err=%d  pairs_ok=%d\n",
		res.sent.Load(), res.ok.Load(), res.shed.Load(), res.errs.Load(), res.pairsOK.Load())
	l := res.latencies
	fmt.Fprintf(out, "latency(us): p50=%d p90=%d p99=%d p99.9=%d max=%d (n=%d)\n",
		quantile(l, 0.50)/1e3, quantile(l, 0.90)/1e3, quantile(l, 0.99)/1e3,
		quantile(l, 0.999)/1e3, quantile(l, 1)/1e3, len(l))
	if cfg.slowConns > 0 || cfg.killEvery > 0 {
		fmt.Fprintf(out, "chaos: slow_conns=%d slow_ok=%d kills=%d (slow conns excluded from latency)\n",
			cfg.slowConns, res.slowOK.Load(), atomic.LoadInt64(&res.kills))
	}
	if cfg.traceN > 0 {
		reportTrace(out, &res.trace)
	}
}

// reportTrace prints the per-stage latency attribution table from the sampled
// traces, largest contributor first, and states what fraction of the traced
// calls' wall time the stages account for — on a healthy run the stage sum
// covers nearly all of it, because the client charges everything it cannot
// attribute to a named stage to its net stage.
func reportTrace(out io.Writer, ts *traceStats) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.calls == 0 {
		fmt.Fprintf(out, "trace: no traced frames completed\n")
		return
	}
	type traceRow struct {
		key     traceRowKey
		total   int64
		samples []int64
	}
	rows := make([]traceRow, 0, len(ts.samples))
	for k, v := range ts.samples {
		var total int64
		for _, ns := range v {
			total += ns
		}
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		rows = append(rows, traceRow{k, total, v})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].total != rows[j].total {
			return rows[i].total > rows[j].total
		}
		if rows[i].key.hop != rows[j].key.hop {
			return rows[i].key.hop < rows[j].key.hop
		}
		return rows[i].key.stage < rows[j].key.stage
	})
	fmt.Fprintf(out, "trace: per-stage latency attribution (%d traced frames)\n", ts.calls)
	fmt.Fprintf(out, "  %-10s %-8s %10s %10s %10s\n", "stage", "hop", "p50(us)", "p99(us)", "share")
	for _, r := range rows {
		fmt.Fprintf(out, "  %-10s %-8s %10.1f %10.1f %9.1f%%\n",
			obs.StageName(r.key.stage), obs.HopName(r.key.hop),
			float64(quantile(r.samples, 0.50))/1e3, float64(quantile(r.samples, 0.99))/1e3,
			100*float64(r.total)/float64(ts.e2eNs))
	}
	fmt.Fprintf(out, "trace: stage sum covers %.1f%% of e2e (n=%d)\n",
		100*float64(ts.stageNs)/float64(ts.e2eNs), ts.calls)
}

// achievedQPS is completed-ok frames per second of measured wall time; under
// overload it plateaus below the offered rate, which is the knee the E28
// curve plots.
func achievedQPS(cfg *config, res *results) float64 {
	secs := res.elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(res.ok.Load()+res.slowOK.Load()) / secs
}

// row is one BENCH_serving.json entry: enough provenance (config, git rev,
// timestamp) that a regression can be traced to a commit, and the
// latency/throughput numbers the knee curve is drawn from.
type row struct {
	Label       string  `json:"label"`
	GitRev      string  `json:"git_rev"`
	Time        string  `json:"time"`
	Mode        string  `json:"mode"`
	PairDist    string  `json:"pair_dist"`
	ZipfS       float64 `json:"zipf_s,omitempty"`
	BatchMix    string  `json:"batch_mix"`
	DistFrac    float64 `json:"dist_frac"`
	Conns       int     `json:"conns"`
	Workers     int     `json:"workers"`
	DurationSec float64 `json:"duration_s"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	FramesSent  int64   `json:"frames_sent"`
	FramesOK    int64   `json:"frames_ok"`
	FramesShed  int64   `json:"frames_shed"`
	FramesErr   int64   `json:"frames_err"`
	PairsOK     int64   `json:"pairs_ok"`
	P50us       int64   `json:"p50_us"`
	P90us       int64   `json:"p90_us"`
	P99us       int64   `json:"p99_us"`
	P999us      int64   `json:"p999_us"`
	MaxUs       int64   `json:"max_us"`
	Kills       int64   `json:"kills,omitempty"`
	SlowConns   int     `json:"slow_conns,omitempty"`
}

func makeRow(cfg *config, res *results) row {
	mode, offered := "closed", achievedQPS(cfg, res)
	if cfg.rate > 0 {
		mode, offered = "open", cfg.rate
	}
	var mixParts []string
	for _, mc := range cfg.mix {
		mixParts = append(mixParts, fmt.Sprintf("%d:%.3g", mc.size, mc.weight))
	}
	zs := 0.0
	if cfg.dist == experiments.DistZipf {
		zs = cfg.zipfS
	}
	l := res.latencies
	return row{
		Label: cfg.label, GitRev: gitRev(), Time: time.Now().UTC().Format(time.RFC3339),
		Mode: mode, PairDist: string(cfg.dist), ZipfS: zs,
		BatchMix: strings.Join(mixParts, ","), DistFrac: cfg.distFrac,
		Conns: cfg.conns, Workers: cfg.workers,
		DurationSec: cfg.duration.Seconds(),
		OfferedQPS:  offered, AchievedQPS: achievedQPS(cfg, res),
		FramesSent: res.sent.Load(), FramesOK: res.ok.Load(),
		FramesShed: res.shed.Load(), FramesErr: res.errs.Load(),
		PairsOK: res.pairsOK.Load(),
		P50us:   quantile(l, 0.50) / 1e3, P90us: quantile(l, 0.90) / 1e3,
		P99us: quantile(l, 0.99) / 1e3, P999us: quantile(l, 0.999) / 1e3,
		MaxUs: quantile(l, 1) / 1e3,
		Kills: atomic.LoadInt64(&res.kills), SlowConns: cfg.slowConns,
	}
}

// gitRev best-effort resolves the working tree's short revision; load results
// without provenance are unusable, but a missing git binary should not fail
// the run.
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// appendRow appends r to the JSON array at path (creating it if absent),
// writing via a temp file + rename so a crashed run cannot truncate the
// tracked benchmark history.
func appendRow(path string, r row) error {
	var rows []row
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &rows); err != nil {
			return fmt.Errorf("existing %s is not a JSON row array: %v", path, err)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	rows = append(rows, r)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), ".bench-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
