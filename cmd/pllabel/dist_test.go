package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/labelstore"
)

func TestRunDistanceSchemes(t *testing.T) {
	path := edgeListFixture(t)
	for _, tc := range []struct {
		args []string
		kind string
	}{
		{[]string{"-scheme", "dist-pll", "-layout", "degree", "-workers", "2"}, labelstore.SchemePLL},
		{[]string{"-scheme", "dist-bounded", "-f", "3"}, labelstore.SchemeBDist},
	} {
		storePath := filepath.Join(t.TempDir(), "dists.pllb")
		args := append(tc.args, "-in", path, "-o", storePath)
		var out bytes.Buffer
		if err := run(args, strings.NewReader(""), &out); err != nil {
			t.Fatalf("%v: %v\n%s", tc.args, err, out.String())
		}
		if !strings.Contains(out.String(), "verify: ok") {
			t.Errorf("%v: missing verification line in %q", tc.args, out.String())
		}
		f, err := os.Open(storePath)
		if err != nil {
			t.Fatal(err)
		}
		store, err := labelstore.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("%v: store unreadable: %v", tc.args, err)
		}
		if got := store.SchemeKind(); got != tc.kind {
			t.Errorf("%v: store kind = %s, want %s", tc.args, got, tc.kind)
		}
	}
}

func TestRunDistanceRejections(t *testing.T) {
	path := edgeListFixture(t)
	var out bytes.Buffer
	err := run([]string{"-scheme", "dist-pll", "-in", path, "-shards", "2", "-o", "x"}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "replica fleets") {
		t.Errorf("-shards with a distance scheme: err = %v", err)
	}
	err = run([]string{"-scheme", "dist-bounded", "-f", "0", "-in", path}, strings.NewReader(""), &out)
	if err == nil || !strings.Contains(err.Error(), "-f >= 1") {
		t.Errorf("dist-bounded -f 0: err = %v", err)
	}
}
