package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
)

func edgeListFixture(t *testing.T) string {
	t.Helper()
	g, err := gen.ChungLuPowerLaw(400, 2.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.el")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSchemes(t *testing.T) {
	path := edgeListFixture(t)
	for _, scheme := range []string{"powerlaw", "sparse", "auto", "forest", "onequery", "nbrlist", "adjmatrix"} {
		var out bytes.Buffer
		err := run([]string{"-scheme", scheme, "-in", path}, strings.NewReader(""), &out)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if !strings.Contains(out.String(), "verify: ok") {
			t.Errorf("%s: missing verification line in %q", scheme, out.String())
		}
	}
}

func TestRunFixedThreshold(t *testing.T) {
	path := edgeListFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-scheme", "fixed", "-tau", "5", "-in", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scheme", "fixed", "-tau", "0", "-in", path}, strings.NewReader(""), &out); err == nil {
		t.Error("tau=0 accepted")
	}
}

func TestRunFitFlag(t *testing.T) {
	path := edgeListFixture(t)
	var out bytes.Buffer
	if err := run([]string{"-scheme", "auto", "-fit", "-in", path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fit: alpha=") {
		t.Errorf("missing fit line in %q", out.String())
	}
}

func TestRunStdin(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "sparse"}, strings.NewReader("0 1\n1 2\n"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=3") {
		t.Errorf("stdin graph not parsed: %q", out.String())
	}
}

func TestRunUnknownScheme(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scheme", "nope"}, strings.NewReader("0 1\n"), &out); err == nil {
		t.Error("unknown scheme accepted")
	}
}

func TestRunWritesStore(t *testing.T) {
	path := edgeListFixture(t)
	storePath := filepath.Join(t.TempDir(), "labels.pllb")
	var out bytes.Buffer
	if err := run([]string{"-scheme", "auto", "-in", path, "-o", storePath}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("empty label store written")
	}
}
