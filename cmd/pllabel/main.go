// Command pllabel labels a graph with a chosen adjacency labeling scheme,
// reports label-size statistics, and verifies decode correctness against
// the input graph.
//
// Usage:
//
//	pllabel -scheme powerlaw -alpha 2.5 < graph.el
//	pllabel -scheme sparse   -in graph.el
//	pllabel -scheme auto     -in graph.el     (fit α, then Theorem 4)
//	pllabel -scheme forest   -in graph.el     (Proposition 5)
//	pllabel -scheme onequery -in graph.el     (Section 6, 1-query)
//	pllabel -scheme nbrlist | adjmatrix       (baselines)
//
// Distance labelings (the second query plane; serve with plserve, query
// with plquery -dist):
//
//	pllabel -scheme dist-pll     -in graph.el -o d.pllb   (pruned landmarks)
//	pllabel -scheme dist-bounded -f 3 -in graph.el        (Lemma 7, bound f)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/labelstore"
	"repro/internal/powerlaw"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/distance"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pllabel: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("pllabel", flag.ContinueOnError)
	var (
		schemeName = fs.String("scheme", "auto", "powerlaw | sparse | auto | fixed | compressed | forest | onequery | nbrlist | adjmatrix | dist-pll | dist-bounded")
		alpha      = fs.Float64("alpha", 2.5, "power-law exponent (powerlaw and dist-bounded schemes)")
		c          = fs.Float64("c", 0, "sparsity constant (sparse scheme; 0 = derive m/n)")
		tau        = fs.Int("tau", 0, "fixed threshold (fixed scheme)")
		bound      = fs.Int("f", 2, "distance bound f(n) (dist-bounded scheme)")
		in         = fs.String("in", "", "input edge list (default stdin)")
		out        = fs.String("o", "", "write the labeling to a label store file (for plquery)")
		verify     = fs.Bool("verify", true, "verify decode correctness")
		fit        = fs.Bool("fit", false, "report the fitted power-law exponent")
		analyze    = fs.Bool("analyze", false, "report clustering and assortativity (O(m·Δ) time)")
		workers    = fs.Int("workers", 1, "parallel encode fill shards (0 = GOMAXPROCS)")
		layoutStr  = fs.String("layout", "id", "physical slab layout: id | degree (degree packs hubs contiguously)")
		shards     = fs.Int("shards", 0, "split the store into N shard files <o>.shard0..N-1 for plserve+plroute (0 = one whole store)")
		shardFnStr = fs.String("shard-fn", "range", "shard ownership function: range | hash")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the encode to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	lay, err := core.ParseLayout(*layoutStr)
	if err != nil {
		return err
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	g, err := graph.ReadEdgeList(r)
	if err != nil {
		return fmt.Errorf("read graph: %w", err)
	}
	fmt.Fprintf(stdout, "graph: n=%d m=%d maxdeg=%d meandeg=%.2f\n", g.N(), g.M(), g.MaxDegree(), g.MeanDegree())

	if *analyze {
		fmt.Fprintf(stdout, "analysis: triangles=%d clustering=%.4f assortativity=%.4f\n",
			g.Triangles(), g.GlobalClustering(), g.DegreeAssortativity())
	}

	if *fit {
		degrees := g.Degrees()
		if f, err := powerlaw.FitAlpha(degrees); err == nil {
			fmt.Fprintf(stdout, "fit: alpha=%.3f xmin=%d ks=%.4f tail=%d\n", f.Alpha, f.Xmin, f.KS, f.NTail)
		} else {
			fmt.Fprintf(stdout, "fit: %v\n", err)
		}
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *schemeName == "dist-pll" || *schemeName == "dist-bounded" {
		// The distance plane: its own encode pipeline (DistArena, not
		// Labeling) and a scheme-stamped v2 store. Distance stores are
		// replicated whole for serving, never sharded.
		if *shards != 0 {
			return fmt.Errorf("distance stores are served by replica fleets, not shard partitions; drop -shards")
		}
		return runDistance(stdout, g, *schemeName, *alpha, *bound, *workers, lay, *out, *verify)
	}
	scheme, err := pick(*schemeName, *alpha, *c, *tau)
	if err != nil {
		return err
	}
	if ls, ok := scheme.(interface{ SetLayout(core.Layout) }); ok {
		ls.SetLayout(lay)
	} else if lay != core.LayoutID {
		return fmt.Errorf("scheme %q does not support -layout %s", *schemeName, lay)
	}
	start := time.Now()
	lab, err := encode(scheme, g, *workers)
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "encode: %.3fs (%.0f vertices/s, workers=%d)\n",
		elapsed.Seconds(), float64(g.N())/max(elapsed.Seconds(), 1e-9), *workers)
	st := lab.Stats()
	fmt.Fprintf(stdout, "scheme: %s\n", lab.Scheme())
	// Report the layout the encoder actually produced (degenerate graphs fall
	// back to the id order even when -layout degree was asked for) and what
	// the permutation block will cost in the store.
	if order := lab.LayoutOrder(); order != nil {
		fmt.Fprintf(stdout, "layout: degree-ordered (permutation overhead %d bytes)\n",
			labelstore.PermutationOverheadBytes(order))
	} else {
		fmt.Fprintln(stdout, "layout: id-ordered (permutation overhead 0 bytes)")
	}
	fmt.Fprintf(stdout, "labels: max=%d bits, mean=%.1f, p50=%d, p90=%d, p99=%d, total=%d bits (%.1f KiB)\n",
		st.Max, st.Mean, st.P50, st.P90, st.P99, st.Total, float64(st.Total)/8/1024)
	if *verify {
		if err := lab.Verify(g); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(stdout, "verify: ok")
	}
	if *shards != 0 {
		if *shards < 2 {
			return fmt.Errorf("-shards %d: a partition needs at least 2 shards", *shards)
		}
		if *out == "" {
			return fmt.Errorf("-shards requires -o (shard files are named <o>.shardI)")
		}
		fn, err := core.ParseShardFn(*shardFnStr)
		if err != nil {
			return err
		}
		if err := saveShardStores(stdout, *out, g.N(), lab, *shards, fn); err != nil {
			return fmt.Errorf("write shard stores: %w", err)
		}
	} else if *out != "" {
		if err := saveStore(*out, g.N(), lab); err != nil {
			return fmt.Errorf("write label store: %w", err)
		}
		fmt.Fprintf(stdout, "label store written to %s\n", *out)
	}
	return nil
}

// runDistance is the encode pipeline for the distance plane: a parallel
// arena encode (plan → prefix-sum → fill, same shape as the adjacency
// pipeline), size statistics over the packed labels, BFS spot-verification
// through the serving engine, and a scheme-stamped format-v2 store that
// plserve and plquery -dist load zero-copy.
func runDistance(stdout io.Writer, g *graph.Graph, name string, alpha float64, f, workers int, lay core.Layout, out string, verify bool) error {
	var (
		arena       *core.DistArena
		schemeLabel string
		err         error
	)
	start := time.Now()
	switch name {
	case "dist-pll":
		s := distance.PLLScheme{}
		schemeLabel = s.Name()
		arena, err = s.EncodeArena(g, workers, lay)
	case "dist-bounded":
		if f < 1 {
			return fmt.Errorf("dist-bounded needs -f >= 1")
		}
		s := distance.Scheme{Alpha: alpha, F: f}
		schemeLabel = s.Name()
		arena, err = s.EncodeArena(g, workers, lay)
	}
	if err != nil {
		return fmt.Errorf("encode: %w", err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "encode: %.3fs (%.0f vertices/s, workers=%d)\n",
		elapsed.Seconds(), float64(g.N())/max(elapsed.Seconds(), 1e-9), workers)
	fmt.Fprintf(stdout, "scheme: %s\n", schemeLabel)
	if arena.Order != nil {
		fmt.Fprintf(stdout, "layout: degree-ordered (permutation overhead %d bytes)\n",
			labelstore.PermutationOverheadBytes(arena.Order))
	} else {
		fmt.Fprintln(stdout, "layout: id-ordered (permutation overhead 0 bytes)")
	}
	printBitLenStats(stdout, arena.BitLens)
	if verify {
		eng, err := core.NewDistEngine(arena)
		if err != nil {
			return fmt.Errorf("verification FAILED: engine rejects the arena: %w", err)
		}
		if err := verifyDistance(g, eng); err != nil {
			return fmt.Errorf("verification FAILED: %w", err)
		}
		fmt.Fprintln(stdout, "verify: ok")
	}
	if out != "" {
		store, err := labelstore.NewDistArenaFile(schemeLabel, map[string]string{"n": strconv.Itoa(g.N())}, arena)
		if err != nil {
			return err
		}
		fl, err := os.Create(out)
		if err != nil {
			return err
		}
		defer fl.Close()
		if err := labelstore.Write(fl, store); err != nil {
			return err
		}
		if err := fl.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "label store written to %s\n", out)
	}
	return nil
}

// printBitLenStats reports the label-size line from packed bit lengths, in
// the same shape as core.Labeling.Stats.
func printBitLenStats(stdout io.Writer, bitLens []int) {
	sorted := append([]int(nil), bitLens...)
	sort.Ints(sorted)
	total, maxBits := int64(0), 0
	for _, l := range bitLens {
		total += int64(l)
		if l > maxBits {
			maxBits = l
		}
	}
	q := func(p float64) int {
		if len(sorted) == 0 {
			return 0
		}
		i := int(p * float64(len(sorted)-1))
		return sorted[i]
	}
	mean := 0.0
	if len(bitLens) > 0 {
		mean = float64(total) / float64(len(bitLens))
	}
	fmt.Fprintf(stdout, "labels: max=%d bits, mean=%.1f, p50=%d, p90=%d, p99=%d, total=%d bits (%.1f KiB)\n",
		maxBits, mean, q(0.50), q(0.90), q(0.99), total, float64(total)/8/1024)
}

// verifyDistance spot-checks the engine against BFS ground truth from a
// spread of source vertices (full n² verification is the test suite's job;
// this is the operator-facing smoke check).
func verifyDistance(g *graph.Graph, eng *core.DistEngine) error {
	n := g.N()
	srcStep, dstStep := max(1, n/16), max(1, n/512)
	for src := 0; src < n; src += srcStep {
		d := g.BFS(src)
		for v := 0; v < n; v += dstStep {
			want := d[v]
			if want < 0 || (eng.Kind() == core.DistBounded && want > eng.F()) {
				want = graph.Unreachable
			}
			got, err := eng.Dist(src, v)
			if err != nil {
				return err
			}
			if got != want {
				return fmt.Errorf("dist(%d,%d) = %d, BFS says %d", src, v, got, want)
			}
		}
	}
	return nil
}

// parallelScheme is implemented by schemes with a sharded-fill encode path.
type parallelScheme interface {
	EncodeParallel(g *graph.Graph, workers int) (*core.Labeling, error)
}

// encode runs the scheme's parallel encoder when one exists (workers != 1 or
// not; the pipeline is the same code either way), else the plain Encode.
func encode(scheme core.Scheme, g *graph.Graph, workers int) (*core.Labeling, error) {
	if ps, ok := scheme.(parallelScheme); ok {
		return ps.EncodeParallel(g, workers)
	}
	return scheme.Encode(g)
}

func saveStore(path string, n int, lab *core.Labeling) error {
	params := map[string]string{"n": strconv.Itoa(n)}
	var store *labelstore.File
	if slab, order, ok := lab.ArenaLayout(); ok {
		// Arena-backed labeling: persist the slab verbatim as a format-v2
		// single-blob store (loaded zero-copy by plquery). A degree-ordered
		// slab additionally carries its logical→physical permutation.
		bitLens := make([]int, n)
		for v := 0; v < n; v++ {
			l, err := lab.Label(v)
			if err != nil {
				return err
			}
			bitLens[v] = l.Len()
		}
		f, err := labelstore.NewPermutedArenaFile(lab.Scheme(), params, slab, bitLens, order)
		if err != nil {
			return err
		}
		store = f
	} else {
		labels := make([]bitstr.String, n)
		for v := 0; v < n; v++ {
			l, err := lab.Label(v)
			if err != nil {
				return err
			}
			labels[v] = l
		}
		store = &labelstore.File{Scheme: lab.Scheme(), Params: params, Labels: labels}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := labelstore.Write(f, store); err != nil {
		return err
	}
	return f.Close()
}

// saveShardStores splits an arena-backed labeling into count shard store
// files named path.shard0..count-1: each holds its owned vertices' full
// labels plus every fat label, foreign thin labels stripped to header stubs
// (one plserve per file, fronted by plroute).
func saveShardStores(stdout io.Writer, path string, n int, lab *core.Labeling, count int, fn core.ShardFn) error {
	slab, order, ok := lab.ArenaLayout()
	if !ok {
		return fmt.Errorf("scheme %s is not arena-backed; sharding needs the fat/thin pipeline", lab.Scheme())
	}
	bitLens := make([]int, n)
	for v := 0; v < n; v++ {
		l, err := lab.Label(v)
		if err != nil {
			return err
		}
		bitLens[v] = l.Len()
	}
	arenas, err := core.ShardLabelArenas(slab, bitLens, order, count, fn)
	if err != nil {
		return err
	}
	params := map[string]string{"n": strconv.Itoa(n)}
	for i, a := range arenas {
		m := core.ShardMap{Count: count, Index: i, Fn: fn}
		store, err := labelstore.NewShardArenaFile(lab.Scheme(), params, a.Slab, a.BitLens, order, m)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		shardPath := fmt.Sprintf("%s.shard%d", path, i)
		f, err := os.Create(shardPath)
		if err != nil {
			return err
		}
		if err := labelstore.Write(f, store); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "shard store written to %s (shard %d/%d fn=%s, %d owned vertices, slab %.1f KiB of %.1f)\n",
			shardPath, i, count, fn, a.Owned, float64(len(a.Slab))/1024, float64(len(slab))/1024)
	}
	return nil
}

func pick(name string, alpha, c float64, tau int) (core.Scheme, error) {
	switch name {
	case "powerlaw":
		return core.NewPowerLawScheme(alpha), nil
	case "auto":
		return core.NewPowerLawSchemeAuto(), nil
	case "sparse":
		if c > 0 {
			return core.NewSparseScheme(c), nil
		}
		return core.NewSparseSchemeAuto(), nil
	case "fixed":
		return core.NewFixedThresholdScheme(tau), nil
	case "compressed":
		return core.NewCompressedScheme(core.NewPowerLawSchemeAuto()), nil
	case "forest":
		return forest.Scheme{}, nil
	case "onequery":
		return oneQueryAdapter{}, nil
	case "nbrlist":
		return baseline.NeighborList{}, nil
	case "adjmatrix":
		return baseline.AdjMatrix{}, nil
	default:
		return nil, fmt.Errorf("unknown scheme %q", name)
	}
}

// oneQueryAdapter presents the 1-query scheme through the core.Scheme
// interface (the embedded Labeling answers queries via its stored labels).
type oneQueryAdapter struct{}

func (oneQueryAdapter) Name() string { return "onequery" }

func (oneQueryAdapter) Encode(g *graph.Graph) (*core.Labeling, error) {
	enc, err := (onequery.Scheme{Seed: 1}).Encode(g)
	if err != nil {
		return nil, err
	}
	return enc.Labeling, nil
}
