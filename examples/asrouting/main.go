// Asrouting: an Internet AS-level-like topology (the paper cites the AS
// graph as a canonical power-law network, and BA-grown graphs as its model).
// The example labels the topology three ways — fat/thin adjacency labels,
// Proposition 5 forest labels that exploit the BA structure, and Lemma 7
// bounded-distance labels — and resolves peering and path-length queries
// from labels alone, as a router would without a global topology table.
//
//	go run ./examples/asrouting
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/schemes/distance"
	"repro/internal/schemes/forest"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("asrouting: ")

	// BA-grown AS topology: each new AS multihomes to m=2 providers chosen
	// preferentially — the classic model for the AS graph (α = 3).
	const n = 8000
	g, err := gen.BarabasiAlbert(n, 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	diam := g.Diameter()
	fmt.Printf("AS topology: %d ASes, %d peering links, diameter %d (small world)\n", g.N(), g.M(), diam)

	// --- Peering queries from adjacency labels ---
	ft, err := core.NewPowerLawScheme(3.0).Encode(g) // BA graphs have α = 3
	if err != nil {
		log.Fatal(err)
	}
	fo, err := (forest.Scheme{}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacency labels: fat/thin max=%d bits; forest (Prop 5) max=%d bits — the BA relaxation wins\n",
		ft.Stats().Max, fo.Stats().Max)

	pairs := [][2]int{{0, 1}, {0, n - 1}, {17, 4242}, {100, 101}}
	for _, p := range pairs {
		adj, err := fo.Adjacent(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  peered(AS%d, AS%d) = %v\n", p[0], p[1], adj)
	}

	// --- Path-length queries from distance labels (Lemma 7) ---
	// Section 7 designs for small distances: most AS pairs are within a few
	// hops (Chung–Lu: power-law graphs have Θ(log n) diameter), so a small
	// bound f already answers the bulk of queries while keeping the fat
	// distance table — the dominant label term — short.
	const f = 4
	ds := distance.Scheme{Alpha: 3.0, F: f}
	dl, err := ds.Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	_, maxBits, meanBits := dl.Stats()
	exactBits := n * bitsFor(diam+2) // the trivial exact-vector label, for scale
	fmt.Printf("distance labels (f=%d): max=%d bits, mean=%.0f bits (exact distance vectors would be %d bits)\n",
		f, maxBits, meanBits, exactBits)

	answered, beyond := 0, 0
	for _, p := range [][2]int{{0, n - 1}, {1, 2}, {17, 4242}, {123, 7654}, {999, 5000}} {
		d, err := dl.Dist(p[0], p[1])
		if err != nil {
			log.Fatal(err)
		}
		truth := g.Dist(p[0], p[1])
		if d == distance.Beyond {
			beyond++
			fmt.Printf("  hops(AS%d, AS%d) > %d\n", p[0], p[1], f)
			continue
		}
		answered++
		if d != truth {
			log.Fatalf("hops(AS%d, AS%d) = %d but BFS says %d", p[0], p[1], d, truth)
		}
		fmt.Printf("  hops(AS%d, AS%d) = %d [ok]\n", p[0], p[1], d)
	}
	fmt.Printf("answered %d/%d queries exactly; %d reported as >%d hops (the scheme's contract)\n",
		answered, answered+beyond, beyond, f)

	// Sanity: spot-verify distance labels on a slice of sources.
	for u := 0; u < n; u += n / 16 {
		truth := g.BFS(u)
		for _, v := range []int{0, n / 2, n - 1} {
			d, err := dl.Dist(u, v)
			if err != nil {
				log.Fatal(err)
			}
			want := truth[v]
			if want == graph.Unreachable || want > f {
				want = distance.Beyond
			}
			if d != want {
				log.Fatalf("dist(%d,%d) = %d, want %d", u, v, d, want)
			}
		}
	}
	fmt.Println("distance label spot-check: ok")
}

// bitsFor returns ceil(log2 v) for v >= 1.
func bitsFor(v int) int {
	b := 0
	for 1<<b < v {
		b++
	}
	return b
}
