// Quickstart: generate a power-law graph, label it with the paper's
// fat/thin scheme, and answer adjacency queries from labels alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/powerlaw"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. A synthetic social-network-like graph: 10k vertices whose expected
	// degrees follow a power law with exponent α = 2.5.
	const (
		n     = 10000
		alpha = 2.5
	)
	g, err := gen.ChungLuPowerLaw(n, alpha, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: n=%d m=%d maxdeg=%d\n", g.N(), g.M(), g.MaxDegree())

	// 2. The graph really is in the paper's upper-bound family P_h, so
	// Theorem 4's guarantee applies.
	p, err := powerlaw.NewParams(alpha, n)
	if err != nil {
		log.Fatal(err)
	}
	rep := powerlaw.CheckPh(g, p, 1)
	fmt.Printf("P_h member: %v (worst tail ratio %.2f at degree %d)\n",
		rep.Member, rep.WorstRatio, rep.WorstK)

	// 3. Encode: every vertex gets a short bit-string label.
	scheme := core.NewPowerLawScheme(alpha)
	labeling, err := scheme.Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	st := labeling.Stats()
	bound, err := core.PowerLawTheoremBound(alpha, n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("labels: max=%d bits, mean=%.1f bits\n", st.Max, st.Mean)
	fmt.Printf("Theorem 4 real-valued bound: %d bits (implementations use ceil(log2 n)-bit\n"+
		"identifiers, so the realized max may exceed it by up to τ+log n bits of rounding)\n", bound)

	// 4. Decode: adjacency is determined from two labels only — the graph
	// is never consulted.
	u, v := 0, 1
	la, err := labeling.Label(u)
	if err != nil {
		log.Fatal(err)
	}
	lb, err := labeling.Label(v)
	if err != nil {
		log.Fatal(err)
	}
	dec := core.NewFatThinDecoder(n) // rebuilt from n alone
	adj, err := dec.Adjacent(la, lb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("adjacent(%d,%d) decoded from labels: %v (graph says %v)\n", u, v, adj, g.HasEdge(u, v))

	// 5. Full verification: every edge and a large non-edge sample decode
	// correctly.
	if err := labeling.Verify(g); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("verification: ok")
}
