// Distributedkv: the peer-to-peer scenario from the paper's introduction —
// "disseminate the structural information of the graph to its vertices and
// store it locally", answering topology queries "without using costly access
// to large, global data structures".
//
// Every vertex runs as a peer goroutine holding exactly one piece of state:
// its own label. A coordinator resolves adjacency queries by collecting the
// two (or, for the 1-query scheme, three) relevant labels over channels; no
// peer and no coordinator ever holds the graph.
//
//	go run ./examples/distributedkv
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"repro/internal/bitstr"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/schemes/onequery"
)

// labelRequest asks a peer for its label.
type labelRequest struct {
	reply chan bitstr.String
}

// peer is one vertex of the network: it owns its label and serves it on
// request. Peers know nothing else about the graph.
type peer struct {
	id    int
	label bitstr.String
	inbox chan labelRequest
}

func (p *peer) serve(wg *sync.WaitGroup) {
	defer wg.Done()
	for req := range p.inbox {
		req.reply <- p.label
	}
}

// network is the peer fleet plus the shared decoder description (the
// family-level decoding algorithm; it contains no per-graph adjacency data).
type network struct {
	peers []*peer
	dec   *core.FatThinDecoder
	oqDec *onequery.Decoder
}

func (nw *network) fetch(v int) (bitstr.String, error) {
	if v < 0 || v >= len(nw.peers) {
		return bitstr.String{}, fmt.Errorf("peer %d does not exist", v)
	}
	reply := make(chan bitstr.String, 1)
	nw.peers[v].inbox <- labelRequest{reply: reply}
	return <-reply, nil
}

// adjacent resolves a query with two label fetches (fat/thin scheme).
func (nw *network) adjacent(u, v int) (bool, error) {
	lu, err := nw.fetch(u)
	if err != nil {
		return false, err
	}
	lv, err := nw.fetch(v)
	if err != nil {
		return false, err
	}
	return nw.dec.Adjacent(lu, lv)
}

// adjacent1q resolves a query with two fetches plus at most one extra fetch
// (Section 6's 1-query scheme, whose labels are only O(log n) bits).
func (nw *network) adjacent1q(u, v int, oqLabels []bitstr.String) (bool, error) {
	// In the 1-query deployment each peer would hold its onequery label;
	// here the coordinator fetches from the same slice to keep one fleet.
	return nw.oqDec.Adjacent(oqLabels[u], oqLabels[v], func(w int) (bitstr.String, error) {
		return oqLabels[w], nil
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("distributedkv: ")

	const n = 5000
	g, err := gen.ChungLuPowerLaw(n, 2.5, 2, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Label the graph once, centrally; then throw the graph away — peers
	// keep only their own labels.
	lab, err := core.NewPowerLawSchemeAuto().Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	oq, err := (onequery.Scheme{Seed: 11}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}

	nw := &network{dec: core.NewFatThinDecoder(n), oqDec: oq.Dec}
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		l, err := lab.Label(v)
		if err != nil {
			log.Fatal(err)
		}
		p := &peer{id: v, label: l, inbox: make(chan labelRequest)}
		nw.peers = append(nw.peers, p)
		wg.Add(1)
		go p.serve(&wg)
	}
	oqLabels := make([]bitstr.String, n)
	for v := 0; v < n; v++ {
		l, err := oq.Label(v)
		if err != nil {
			log.Fatal(err)
		}
		oqLabels[v] = l
	}
	fmt.Printf("fleet: %d peers, each holding only its own label (max %d bits)\n", n, lab.Stats().Max)

	// Resolve a batch of queries through the fleet and check against truth.
	rng := rand.New(rand.NewSource(5))
	const queries = 2000
	mismatches := 0
	for i := 0; i < queries; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		got, err := nw.adjacent(u, v)
		if err != nil {
			log.Fatal(err)
		}
		got1q, err := nw.adjacent1q(u, v, oqLabels)
		if err != nil {
			log.Fatal(err)
		}
		want := g.HasEdge(u, v)
		if got != want || got1q != want {
			mismatches++
		}
	}
	fmt.Printf("resolved %d adjacency queries peer-to-peer: %d mismatches\n", queries, mismatches)
	fmt.Printf("1-query labels are %d bits max vs %d for 2-label scheme (cost: one extra fetch per query)\n",
		oq.Stats().Max, lab.Stats().Max)

	for _, p := range nw.peers {
		close(p.inbox)
	}
	wg.Wait()
	if mismatches > 0 {
		log.Fatalf("%d mismatching queries", mismatches)
	}
	fmt.Println("fleet shut down cleanly; no peer ever saw the global graph")
}
