// Socialgraph: the workload the paper's introduction motivates — a social
// network whose degree distribution follows a power law. The example fits
// the exponent from the data (as a practitioner would, since α is never
// handed to you), predicts the fat/thin threshold from the fitted curve,
// and compares the resulting labels against every other scheme in the
// repository on the same graph.
//
//	go run ./examples/socialgraph
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/powerlaw"
	"repro/internal/schemes/baseline"
	"repro/internal/schemes/forest"
	"repro/internal/schemes/onequery"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("socialgraph: ")

	// A "social network": heavy-tailed Chung–Lu graph, 30k members.
	const n = 30000
	g, err := gen.ChungLuPowerLaw(n, 2.3, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: n=%d friendships=%d, most-connected member has %d friends\n",
		g.N(), g.M(), g.MaxDegree())

	// Fit the power-law exponent from the degree sample — the paper's
	// "threshold prediction depends only on the coefficient α of a power-law
	// curve fitted to the degree distribution".
	degrees := g.Degrees()
	fit, err := powerlaw.FitAlpha(degrees)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted degree distribution: α=%.2f (xmin=%d, KS=%.3f)\n", fit.Alpha, fit.Xmin, fit.KS)

	auto := core.NewPowerLawSchemeAuto()
	tau, err := auto.Threshold(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted fat/thin threshold: %d (members with ≥%d friends are \"fat\")\n\n", tau, tau)

	// Compare all adjacency schemes on this one graph.
	type result struct {
		name     string
		max      int
		mean     float64
		totalKiB float64
	}
	var results []result
	schemes := []core.Scheme{
		auto,
		core.NewSparseSchemeAuto(),
		forest.Scheme{},
		baseline.NeighborList{},
		baseline.AdjMatrix{},
	}
	for _, s := range schemes {
		lab, err := s.Encode(g)
		if err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		if err := lab.Verify(g); err != nil {
			log.Fatalf("%s: %v", s.Name(), err)
		}
		st := lab.Stats()
		results = append(results, result{s.Name(), st.Max, st.Mean, float64(st.Total) / 8 / 1024})
	}
	oq, err := (onequery.Scheme{Seed: 7}).Encode(g)
	if err != nil {
		log.Fatal(err)
	}
	if err := oq.Verify(g); err != nil {
		log.Fatal(err)
	}
	ost := oq.Stats()
	results = append(results, result{"onequery (1 extra fetch)", ost.Max, ost.Mean, float64(ost.Total) / 8 / 1024})

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "scheme\tmax bits\tmean bits\ttotal KiB")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\n", r.name, r.max, r.mean, r.totalKiB)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nall schemes verified against the graph; the power-law scheme keeps")
	fmt.Println("worst-case labels near n^(1/α) bits while the matrix baseline needs ~n bits")
}
