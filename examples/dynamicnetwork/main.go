// Dynamicnetwork: the paper's future-work scenario — a network that keeps
// changing after labels are assigned. A preferential-attachment network
// grows live through the dynamic fat/thin scheme; memberships churn
// (links appear and disappear); and adjacency queries keep answering
// correctly from the current labels while the scheme reports exactly the
// communication cost the paper asks to account for: how many labels were
// rewritten and how many bits moved.
//
//	go run ./examples/dynamicnetwork
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/schemes/dynamic"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dynamicnetwork: ")

	s, err := dynamic.New(3.0, 4) // BA-grown networks have α = 3
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2016))

	// Phase 1: growth. Preferential attachment, 2 links per joining node,
	// implemented against the dynamic scheme itself (no offline graph).
	const n = 4000
	var endpoints []int // one entry per edge endpoint = degree-weighted urn
	join := func() {
		v := s.AddVertex()
		if v == 0 {
			return
		}
		for links := 0; links < 2 && links < v; links++ {
			var target int
			for {
				if len(endpoints) == 0 {
					target = rng.Intn(v)
				} else {
					target = endpoints[rng.Intn(len(endpoints))]
				}
				if target != v {
					if ok, err := s.Adjacent(v, target); err == nil && !ok {
						break
					}
				}
			}
			if err := s.AddEdge(v, target); err != nil {
				log.Fatal(err)
			}
			endpoints = append(endpoints, v, target)
		}
	}
	for i := 0; i < n; i++ {
		join()
	}
	st := s.Stats()
	fmt.Printf("grew to n=%d m=%d through the dynamic scheme\n", s.N(), s.M())
	fmt.Printf("growth cost: %.2f relabels/update, %.0f bits rewritten/update, %d promotions, %d rebuilds\n",
		float64(st.Relabels)/float64(st.Updates), float64(st.BitsRewritten)/float64(st.Updates),
		st.Promotions, st.Rebuilds)

	// Phase 2: churn. Random links break and new ones form.
	type edge struct{ u, v int }
	var live []edge
	g := s.Snapshot()
	g.Edges(func(u, v int) { live = append(live, edge{u, v}) })
	before := s.Stats()
	const churn = 2000
	for i := 0; i < churn; i++ {
		if i%2 == 0 && len(live) > 0 {
			k := rng.Intn(len(live))
			e := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := s.RemoveEdge(e.u, e.v); err != nil {
				log.Fatal(err)
			}
		} else {
			u, v := rng.Intn(s.N()), rng.Intn(s.N())
			if u == v {
				continue
			}
			if ok, err := s.Adjacent(u, v); err != nil || ok {
				continue
			}
			if err := s.AddEdge(u, v); err != nil {
				log.Fatal(err)
			}
			live = append(live, edge{u, v})
		}
	}
	after := s.Stats()
	churnUpdates := after.Updates - before.Updates
	fmt.Printf("churn: %d updates at %.2f relabels/update\n",
		churnUpdates, float64(after.Relabels-before.Relabels)/float64(churnUpdates))

	// Phase 3: verify the final labeling answers every sampled query
	// correctly against the true current topology.
	truth := s.Snapshot()
	checked, wrong := 0, 0
	for i := 0; i < 20000; i++ {
		u, v := rng.Intn(s.N()), rng.Intn(s.N())
		got, err := s.Adjacent(u, v)
		if err != nil {
			log.Fatal(err)
		}
		if got != truth.HasEdge(u, v) {
			wrong++
		}
		checked++
	}
	fmt.Printf("post-churn verification: %d queries, %d wrong\n", checked, wrong)
	fmt.Printf("current max label: %d bits (threshold τ=%d)\n", s.MaxLabelBits(), s.Threshold())
	if wrong > 0 {
		log.Fatalf("%d incorrect answers", wrong)
	}
	fmt.Println("the network changed ~14k times and every query still decodes from labels alone")
}
